"""Constraint extraction for the 2D legal pattern assessment (Eq. 14).

Given a generated binary topology matrix, this module derives the
pattern-dependent constraint sets of the nonlinear system:

* ``SetW`` — index ranges of the geometric vectors whose sum must be at least
  ``width_min`` (one range per maximal run of 1s in every row / column),
* ``SetS`` — index ranges whose sum must be at least ``space_min`` (one range
  per maximal interior run of 0s between two shapes in a row / column),
* the per-polygon cell lists used by the nonlinear area constraints
  ``sum_{(r,c) in polygon} delta_x[c] * delta_y[r] in [area_min, area_max]``.

Runs of 0s that touch the window border are *not* space constraints: the
distance to the clip boundary is unknown (the neighbouring clip continues
there), exactly as in the paper's formulation where only adjacent polygons
constrain each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import connected_components, runs_of_value, validate_grid


@dataclass(frozen=True)
class IntervalConstraint:
    """``sum(delta[start..end]) >= minimum`` over one geometric vector.

    ``axis`` is ``"x"`` when the constraint applies to ``delta_x`` (a
    horizontal run) and ``"y"`` for ``delta_y``.
    """

    axis: str
    start: int
    end: int
    minimum: int
    kind: str  # "width" or "space"

    def indices(self) -> np.ndarray:
        return np.arange(self.start, self.end + 1)


@dataclass
class TopologyConstraints:
    """All pattern-dependent constraints extracted from one topology matrix."""

    shape: tuple[int, int]
    width_constraints: list[IntervalConstraint] = field(default_factory=list)
    space_constraints: list[IntervalConstraint] = field(default_factory=list)
    polygon_cells: list[list[tuple[int, int]]] = field(default_factory=list)

    @property
    def num_polygons(self) -> int:
        return len(self.polygon_cells)

    @property
    def all_interval_constraints(self) -> list[IntervalConstraint]:
        return self.width_constraints + self.space_constraints


def _interior_zero_runs(line: np.ndarray) -> list[tuple[int, int]]:
    """Runs of 0s strictly between two 1s in a 1-D line."""
    ones = np.nonzero(line == 1)[0]
    if ones.size < 2:
        return []
    first, last = int(ones[0]), int(ones[-1])
    runs = []
    for start, end in runs_of_value(line, 0):
        if start > first and end < last:
            runs.append((start, end))
    return runs


def extract_constraints(
    topology: np.ndarray, width_min: int, space_min: int
) -> TopologyConstraints:
    """Build the constraint sets of Eq. (14) for one topology matrix."""
    grid = validate_grid(topology)
    rows, cols = grid.shape
    constraints = TopologyConstraints(shape=(rows, cols))

    width_seen: set[tuple[str, int, int]] = set()
    space_seen: set[tuple[str, int, int]] = set()

    # Horizontal runs constrain delta_x.
    for r in range(rows):
        line = grid[r]
        for start, end in runs_of_value(line, 1):
            key = ("x", start, end)
            if key not in width_seen:
                width_seen.add(key)
                constraints.width_constraints.append(
                    IntervalConstraint("x", start, end, width_min, "width")
                )
        for start, end in _interior_zero_runs(line):
            key = ("x", start, end)
            if key not in space_seen:
                space_seen.add(key)
                constraints.space_constraints.append(
                    IntervalConstraint("x", start, end, space_min, "space")
                )

    # Vertical runs constrain delta_y.
    for c in range(cols):
        line = grid[:, c]
        for start, end in runs_of_value(line, 1):
            key = ("y", start, end)
            if key not in width_seen:
                width_seen.add(key)
                constraints.width_constraints.append(
                    IntervalConstraint("y", start, end, width_min, "width")
                )
        for start, end in _interior_zero_runs(line):
            key = ("y", start, end)
            if key not in space_seen:
                space_seen.add(key)
                constraints.space_constraints.append(
                    IntervalConstraint("y", start, end, space_min, "space")
                )

    # Polygon cells for the area constraints.
    labels, count = connected_components(grid)
    for comp in range(1, count + 1):
        rr, cc = np.nonzero(labels == comp)
        constraints.polygon_cells.append(list(zip(rr.tolist(), cc.tolist())))

    return constraints


def polygon_area(
    cells: list[tuple[int, int]], delta_x: np.ndarray, delta_y: np.ndarray
) -> float:
    """Area of one polygon given concrete geometric vectors."""
    dx = np.asarray(delta_x, dtype=np.float64)
    dy = np.asarray(delta_y, dtype=np.float64)
    return float(sum(dx[c] * dy[r] for r, c in cells))

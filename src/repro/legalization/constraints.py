"""Constraint extraction for the 2D legal pattern assessment (Eq. 14).

Given a generated binary topology matrix, this module derives the
pattern-dependent constraint sets of the nonlinear system:

* ``SetW`` — index ranges of the geometric vectors whose sum must be at least
  ``width_min`` (one range per maximal run of 1s in every row / column),
* ``SetS`` — index ranges whose sum must be at least ``space_min`` (one range
  per maximal interior run of 0s between two shapes in a row / column),
* the per-polygon cell lists used by the nonlinear area constraints
  ``sum_{(r,c) in polygon} delta_x[c] * delta_y[r] in [area_min, area_max]``.

Runs of 0s that touch the window border are *not* space constraints: the
distance to the clip boundary is unknown (the neighbouring clip continues
there), exactly as in the paper's formulation where only adjacent polygons
constrain each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import connected_components, interior_runs_2d, runs_2d, validate_grid


@dataclass(frozen=True)
class IntervalConstraint:
    """``sum(delta[start..end]) >= minimum`` over one geometric vector.

    ``axis`` is ``"x"`` when the constraint applies to ``delta_x`` (a
    horizontal run) and ``"y"`` for ``delta_y``.
    """

    axis: str
    start: int
    end: int
    minimum: int
    kind: str  # "width" or "space"

    def indices(self) -> np.ndarray:
        return np.arange(self.start, self.end + 1)


@dataclass
class TopologyConstraints:
    """All pattern-dependent constraints extracted from one topology matrix."""

    shape: tuple[int, int]
    width_constraints: list[IntervalConstraint] = field(default_factory=list)
    space_constraints: list[IntervalConstraint] = field(default_factory=list)
    polygon_cells: list[list[tuple[int, int]]] = field(default_factory=list)

    @property
    def num_polygons(self) -> int:
        return len(self.polygon_cells)

    @property
    def all_interval_constraints(self) -> list[IntervalConstraint]:
        return self.width_constraints + self.space_constraints


def _dedup_runs(
    start: np.ndarray, end: np.ndarray, span: int
) -> tuple[np.ndarray, np.ndarray]:
    """First-occurrence dedup of ``(start, end)`` pairs, scan order kept.

    The vectorized form of the seen-set the extraction loop used to carry:
    identical runs repeat across the lines of a grid (every row crossing the
    same rectangle yields the same column range), and only the first
    occurrence becomes a constraint.
    """
    codes = start.astype(np.int64) * (span + 1) + end
    _, first = np.unique(codes, return_index=True)
    first.sort()
    return start[first], end[first]


def extract_constraints(
    topology: np.ndarray, width_min: int, space_min: int
) -> TopologyConstraints:
    """Build the constraint sets of Eq. (14) for one topology matrix.

    Runs are extracted with the vectorized run-length kernels of
    :mod:`repro.geometry` (one diff + nonzero per direction instead of a
    Python loop per line); constraint order is unchanged — first occurrence
    in row-major scan order, rows before columns.
    """
    grid = validate_grid(topology)
    rows, cols = grid.shape
    constraints = TopologyConstraints(shape=(rows, cols))

    # Horizontal runs constrain delta_x; vertical runs (via the transposed
    # grid) constrain delta_y.
    for axis, view, span in (("x", grid, cols), ("y", grid.T, rows)):
        _, start, end = runs_2d(view, 1)
        for s, e in zip(*_dedup_runs(start, end, span)):
            constraints.width_constraints.append(
                IntervalConstraint(axis, int(s), int(e), width_min, "width")
            )
        _, start, end = interior_runs_2d(view, 0)
        for s, e in zip(*_dedup_runs(start, end, span)):
            constraints.space_constraints.append(
                IntervalConstraint(axis, int(s), int(e), space_min, "space")
            )

    # Polygon cells for the area constraints.
    labels, count = connected_components(grid)
    for comp in range(1, count + 1):
        rr, cc = np.nonzero(labels == comp)
        constraints.polygon_cells.append(list(zip(rr.tolist(), cc.tolist())))

    return constraints


def polygon_area(
    cells: "list[tuple[int, int]] | np.ndarray", delta_x: np.ndarray, delta_y: np.ndarray
) -> float:
    """Area of one polygon given concrete geometric vectors.

    ``cells`` is a sequence of ``(row, col)`` pairs (or an equivalent
    ``(n, 2)`` array); the area is the sum of ``delta_x[col] * delta_y[row]``
    over them, evaluated with one gather per axis.
    """
    dx = np.asarray(delta_x, dtype=np.float64)
    dy = np.asarray(delta_y, dtype=np.float64)
    coords = np.asarray(cells, dtype=np.int64)
    if coords.size == 0:
        return 0.0
    return float((dx[coords[:, 1]] * dy[coords[:, 0]]).sum())

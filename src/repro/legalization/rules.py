"""Design rules (Fig. 3 of the paper).

Three geometric rules govern pattern legality:

* **Space**  — the distance between two adjacent polygons, measured along the
  x or y axis, must be at least ``space_min``.
* **Width**  — the size of a shape in one direction must be at least
  ``width_min``.
* **Area**   — every polygon's area must lie in ``[area_min, area_max]``.

The rule values are pattern-independent constants supplied by the technology;
changing them requires no retraining because legalisation is decoupled from
topology generation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DesignRules:
    """Design-rule constants, all in nm / nm^2.

    ``pattern_size`` is the side length of the square layout window that the
    geometric vectors must sum to (2048 nm in the paper's dataset).
    """

    space_min: int = 32
    width_min: int = 32
    area_min: int = 3_000
    area_max: int = 600_000
    pattern_size: int = 2_048

    def __post_init__(self) -> None:
        if self.space_min <= 0 or self.width_min <= 0:
            raise ValueError("space_min and width_min must be positive")
        if self.area_min <= 0 or self.area_max <= 0:
            raise ValueError("area bounds must be positive")
        if self.area_min > self.area_max:
            raise ValueError("area_min must not exceed area_max")
        if self.pattern_size <= 0:
            raise ValueError("pattern_size must be positive")

    def with_space_min(self, space_min: int) -> "DesignRules":
        """A copy with a different minimum spacing (Fig. 8b scenario)."""
        return replace(self, space_min=space_min)

    def with_width_min(self, width_min: int) -> "DesignRules":
        """A copy with a different minimum width."""
        return replace(self, width_min=width_min)

    def with_area_range(self, area_min: int, area_max: int) -> "DesignRules":
        """A copy with a different legal area range (Fig. 8c scenario)."""
        return replace(self, area_min=area_min, area_max=area_max)


#: The rule set used by the standard experiments ("Normal rule" in Fig. 8a).
NORMAL_RULES = DesignRules()

#: Fig. 8b: a noticeably larger minimum spacing.
LARGER_SPACE_RULES = NORMAL_RULES.with_space_min(96)

#: Fig. 8c: a much smaller maximum polygon area.
SMALLER_AREA_RULES = NORMAL_RULES.with_area_range(NORMAL_RULES.area_min, 120_000)

"""Parallel legalization engine with deterministic sharding.

:class:`LegalizationEngine` is the batch entry point for the "2D Legal
Pattern Assessment" phase (Section III-D): the pipeline, the Table I/II
harnesses and the benchmarks all legalise topology batches through it.  It
mirrors the design of :class:`~repro.pipeline.SamplingEngine`:

* **Embarrassingly parallel hot path** — each topology needs one independent
  nonlinear solve (or several, in DiffPattern-L mode), so the batch is
  sharded across a ``concurrent.futures.ProcessPoolExecutor``.  At
  ``workers=1`` the engine runs serially in-process with zero pool overhead.

* **Shard-invariant determinism** — every topology index owns an independent
  random stream spawned from ``(seed, index)`` via
  :class:`numpy.random.SeedSequence`.  The solver targets drawn for topology
  ``i`` therefore depend only on the seed and ``i``, never on the worker
  count, the chunk size, or which other topologies share the batch:
  parallel output is element-wise identical to the serial run, which is what
  the parity tests assert.

* **Merged statistics and per-phase throughput** — per-shard
  :class:`~repro.legalization.LegalizationStats` are folded into one block,
  and a :class:`LegalizationReport` (analogous to ``SamplingReport``)
  reports topologies/second, patterns/second and how much aggregate solver
  time the wall-clock run amortised.

The ``chunk_size`` knob trades scheduling overhead against load balance:
smaller chunks keep slow solves from starving idle workers, without changing
any output value.

The pool is created per batch call and torn down with it — forking is cheap
on Linux and nothing can leak between runs; the reference library is shipped
to each worker once per call via the pool initializer, not once per chunk.
Callers that legalise repeatedly should hold on to one engine (the pipeline
caches its engine per dataset/knob combination).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..squish import SquishPattern
from ..utils import resolve_seed
from .legalizer import LegalizationStats, LegalizedTopology, Legalizer
from .rules import DesignRules
from .solver import SolverOptions


def default_workers() -> int:
    """A sensible worker count for this host (capped to keep RAM bounded).

    The ``REPRO_WORKERS`` environment variable (a positive integer)
    overrides the heuristic, so container deployments can size the pool
    without code changes.
    """
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be a positive integer, got {env!r}")
        return workers
    return max(1, min(8, os.cpu_count() or 1))


@dataclass
class LegalizationReport:
    """Per-phase throughput of one :class:`LegalizationEngine` run."""

    num_topologies: int
    num_solutions: int
    workers: int
    chunk_size: int
    num_chunks: int
    total_seconds: float = 0.0
    #: Aggregate time spent inside the nonlinear solver, summed across all
    #: workers — it exceeds ``total_seconds`` when parallelism is winning.
    solver_seconds: float = 0.0
    stats: LegalizationStats = field(default_factory=LegalizationStats)

    @property
    def seconds_per_topology(self) -> float:
        return self.total_seconds / self.num_topologies if self.num_topologies else 0.0

    @property
    def topologies_per_second(self) -> float:
        return self.num_topologies / self.total_seconds if self.total_seconds else float("inf")

    @property
    def patterns_per_second(self) -> float:
        return self.stats.solutions / self.total_seconds if self.total_seconds else float("inf")

    @property
    def solver_utilization(self) -> float:
        """Aggregate solver time per wall-clock second (≈ effective workers)."""
        return self.solver_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def success_rate(self) -> float:
        return self.stats.success_rate

    def merge(self, other: "LegalizationReport") -> "LegalizationReport":
        """Fold another report into this one (streamed-run aggregation)."""
        self.num_topologies += other.num_topologies
        self.num_chunks += other.num_chunks
        self.total_seconds += other.total_seconds
        self.solver_seconds += other.solver_seconds
        self.stats.merge(other.stats)
        self.num_solutions = max(self.num_solutions, other.num_solutions)
        self.workers = max(self.workers, other.workers)
        self.chunk_size = max(self.chunk_size, other.chunk_size)
        return self

    def format(self) -> str:
        lines = [
            f"topologies         {self.num_topologies} "
            f"(chunks of <= {self.chunk_size}, {self.num_chunks} chunk(s), "
            f"{self.workers} worker(s), {self.num_solutions} solution(s) each)",
            f"total              {self.total_seconds:.4f} s "
            f"({self.topologies_per_second:.2f} topologies/s, "
            f"{self.patterns_per_second:.2f} patterns/s)",
            f"  solver aggregate {self.solver_seconds:.4f} s "
            f"({self.solver_utilization:.2f} effective workers)",
            f"  solved           {self.stats.solved}/{self.stats.attempted} "
            f"({self.success_rate:.0%}), {self.stats.solutions} pattern(s), "
            f"{self.stats.total_iterations} solver iteration(s)",
            f"  fast path        {self.stats.fast_path_solutions}/{self.stats.solutions} "
            f"solution(s) via repair ({self.stats.fast_path_fraction:.0%})",
            f"  batched          {self.stats.batched_sweeps} whole-chunk sweep(s) "
            f"over {self.stats.batched_sweep_topologies} topologies "
            f"(mean {self.stats.batched_sweep_mean_size:.1f}), "
            f"{self.stats.batched_tail_solves} SLSQP tail solve(s)",
        ]
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# worker-process plumbing
# --------------------------------------------------------------------------- #
# One Legalizer per worker process, built once by the pool initializer so the
# (potentially large) reference-geometry library is shipped to each worker a
# single time instead of once per chunk.
_WORKER_LEGALIZER: "Legalizer | None" = None


def _init_worker(
    rules: DesignRules,
    references: "list[tuple[np.ndarray, np.ndarray]] | None",
    options: SolverOptions,
) -> None:
    global _WORKER_LEGALIZER
    _WORKER_LEGALIZER = Legalizer(rules, reference_geometries=references, options=options)


def _legalize_shard(
    payload: "tuple[int, list[np.ndarray], int, int]",
) -> "tuple[int, list[LegalizedTopology], LegalizationStats]":
    """Legalise one chunk inside a worker; returns ``(start_index, results, stats)``."""
    start_index, topologies, num_solutions, base_seed = payload
    legalizer = _WORKER_LEGALIZER
    if legalizer is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker process was not initialised")
    legalizer.stats = LegalizationStats()
    results = legalizer.legalize_batch(
        topologies, num_solutions=num_solutions, rng=base_seed, first_index=start_index
    )
    return start_index, results, legalizer.stats


class LegalizationEngine:
    """Sharded, deterministic batch legaliser.

    Parameters
    ----------
    rules:
        Active design rules.
    reference_geometries:
        Optional warm-start library (``Solving-E``); bucketed by shape once
        per worker via :class:`~repro.legalization.ReferenceIndex`.
    options:
        Numerical solver options.
    workers:
        Process-pool width.  ``1`` (the default) runs serially in-process;
        ``None`` uses :func:`default_workers`.
    chunk_size:
        Topologies per pool task.  ``None`` derives a balanced default from
        the batch and worker count.  Output never depends on this value.
    """

    def __init__(
        self,
        rules: DesignRules,
        reference_geometries: "list[tuple[np.ndarray, np.ndarray]] | None" = None,
        options: "SolverOptions | None" = None,
        workers: "int | None" = 1,
        chunk_size: "int | None" = None,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.rules = rules
        self.reference_geometries = list(reference_geometries or [])
        self.options = options if options is not None else SolverOptions()
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.last_report: "LegalizationReport | None" = None
        self._pool: "ProcessPoolExecutor | None" = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def legalize_batch(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int = 1,
        seed: "int | np.random.Generator | None" = 0,
        chunk_size: "int | None" = None,
        first_index: int = 0,
    ) -> list[LegalizedTopology]:
        """Legalise a batch; element ``i`` depends only on ``(seed, i)``.

        ``first_index`` offsets the per-topology streams: the batch occupies
        indices ``[first_index, first_index + len(batch))`` of the seed's
        virtual sequence, so a streaming caller legalising consecutive
        windows reproduces one monolithic call bit for bit.
        """
        results, _ = self.legalize_batch_with_report(
            topologies,
            num_solutions=num_solutions,
            seed=seed,
            chunk_size=chunk_size,
            first_index=first_index,
        )
        return results

    def legalize_batch_with_report(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int = 1,
        seed: "int | np.random.Generator | None" = 0,
        chunk_size: "int | None" = None,
        first_index: int = 0,
    ) -> tuple[list[LegalizedTopology], LegalizationReport]:
        """Like :meth:`legalize_batch` but also returns the throughput report."""
        if first_index < 0:
            raise ValueError("first_index must be >= 0")
        batch = [np.asarray(t) for t in topologies]
        base_seed = resolve_seed(seed)
        chunk = self._resolve_chunk_size(len(batch), chunk_size)
        shards = [
            (first_index + start, batch[start : start + chunk], int(num_solutions), base_seed)
            for start in range(0, len(batch), chunk)
        ]
        report = LegalizationReport(
            num_topologies=len(batch),
            num_solutions=int(num_solutions),
            workers=self.workers,
            chunk_size=chunk,
            num_chunks=len(shards),
        )

        start_total = time.perf_counter()
        if self.workers == 1 or len(batch) <= 1:
            # One legaliser per call, like the parallel path ships the
            # reference library per call: reassigning engine attributes
            # between calls affects serial and parallel runs identically.
            legalizer = Legalizer(
                self.rules,
                reference_geometries=self.reference_geometries,
                options=self.options,
            )
            outputs = [self._run_shard_serial(shard, legalizer) for shard in shards]
        else:
            outputs = self._run_shards_parallel(shards)
        report.total_seconds = time.perf_counter() - start_total

        outputs.sort(key=lambda item: item[0])
        results: list[LegalizedTopology] = []
        for _, shard_results, shard_stats in outputs:
            results.extend(shard_results)
            report.stats.merge(shard_stats)
        report.solver_seconds = report.stats.total_solver_time
        self.last_report = report
        return results, report

    @contextmanager
    def pool(self):
        """Hold one process pool open across several batch calls.

        The default per-call pool keeps one-shot batches leak-free, but a
        streaming caller that legalises many small chunks would otherwise
        pay pool startup — and re-ship the reference-geometry library to
        every worker — once *per chunk*.  Inside this context the pool (and
        the workers' reference copies) persists until exit; re-entering is a
        no-op, and at ``workers=1`` there is nothing to hold.  The engine's
        rules/references/options are pinned for the lifetime of the pool —
        reassign them only outside the context.
        """
        if self.workers == 1 or self._pool is not None:
            yield self
            return
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.rules, self.reference_geometries, self.options),
        )
        try:
            yield self
        finally:
            pool, self._pool = self._pool, None
            pool.shutdown()

    def legal_patterns(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int = 1,
        seed: "int | np.random.Generator | None" = 0,
        chunk_size: "int | None" = None,
    ) -> list[SquishPattern]:
        """Flatten :meth:`legalize_batch` into the final pattern library."""
        results = self.legalize_batch(
            topologies, num_solutions=num_solutions, seed=seed, chunk_size=chunk_size
        )
        return [pattern for result in results for pattern in result.patterns]

    @property
    def stats(self) -> LegalizationStats:
        """Merged statistics of the most recent run."""
        return self.last_report.stats if self.last_report is not None else LegalizationStats()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _resolve_chunk_size(self, num_topologies: int, chunk_size: "int | None") -> int:
        chunk = chunk_size if chunk_size is not None else self.chunk_size
        if chunk is None:
            # Aim for ~4 chunks per worker so one hard solve cannot starve
            # the pool, without drowning it in per-task overhead.
            chunk = max(1, -(-num_topologies // (4 * self.workers)))
        if chunk < 1:
            raise ValueError("chunk_size must be >= 1")
        return int(chunk)

    def _run_shard_serial(
        self,
        shard: "tuple[int, list[np.ndarray], int, int]",
        legalizer: Legalizer,
    ) -> "tuple[int, list[LegalizedTopology], LegalizationStats]":
        start_index, topologies, num_solutions, base_seed = shard
        legalizer.stats = LegalizationStats()
        results = legalizer.legalize_batch(
            topologies, num_solutions=num_solutions, rng=base_seed, first_index=start_index
        )
        return start_index, results, legalizer.stats

    def _run_shards_parallel(
        self, shards: "list[tuple[int, list[np.ndarray], int, int]]"
    ) -> "list[tuple[int, list[LegalizedTopology], LegalizationStats]]":
        if self._pool is not None:
            return list(self._pool.map(_legalize_shard, shards))
        max_workers = min(self.workers, len(shards))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(self.rules, self.reference_geometries, self.options),
        ) as pool:
            return list(pool.map(_legalize_shard, shards))

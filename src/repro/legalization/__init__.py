"""White-box 2D legal pattern assessment (design rules, constraints, solver)."""

from .batched import (
    BatchCompiledConstraints,
    ChunkSolveOutcome,
    solve_geometry_chunk,
)
from .compiled import (
    CompiledConstraints,
    clear_compilation_cache,
    compilation_cache_info,
    compile_constraints,
    compiled_for_topology,
    set_compilation_cache_capacity,
)
from .constraints import (
    IntervalConstraint,
    TopologyConstraints,
    extract_constraints,
    polygon_area,
)
from .engine import LegalizationEngine, LegalizationReport, default_workers
from .legalizer import (
    LegalizationStats,
    LegalizedTopology,
    Legalizer,
    ReferenceIndex,
)
from .rules import (
    LARGER_SPACE_RULES,
    NORMAL_RULES,
    SMALLER_AREA_RULES,
    DesignRules,
)
from .solver import (
    SOLVER_MODES,
    GeometrySolution,
    SolverOptions,
    solve_geometry,
    solve_topology,
)

__all__ = [
    "DesignRules",
    "NORMAL_RULES",
    "LARGER_SPACE_RULES",
    "SMALLER_AREA_RULES",
    "IntervalConstraint",
    "TopologyConstraints",
    "extract_constraints",
    "polygon_area",
    "CompiledConstraints",
    "compile_constraints",
    "compiled_for_topology",
    "compilation_cache_info",
    "clear_compilation_cache",
    "set_compilation_cache_capacity",
    "BatchCompiledConstraints",
    "ChunkSolveOutcome",
    "solve_geometry_chunk",
    "SOLVER_MODES",
    "SolverOptions",
    "GeometrySolution",
    "solve_geometry",
    "solve_topology",
    "Legalizer",
    "LegalizedTopology",
    "LegalizationStats",
    "LegalizationEngine",
    "LegalizationReport",
    "ReferenceIndex",
    "default_workers",
]

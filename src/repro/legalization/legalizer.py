"""High-level legalisation API: topology matrix in, legal squish patterns out.

Implements the "2D Legal Pattern Assessment" phase of the framework
(Section III-D): every generated topology receives one (DiffPattern-S) or
many (DiffPattern-L) legal geometric-vector assignments under the active
design rules, and unsolvable topologies are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..squish import SquishPattern
from ..utils import as_rng
from .constraints import extract_constraints
from .rules import DesignRules
from .solver import GeometrySolution, SolverOptions, solve_geometry


@dataclass
class LegalizationStats:
    """Aggregate statistics of a legalisation run (feeds Table II)."""

    attempted: int = 0
    solved: int = 0
    failed: int = 0
    total_solver_time: float = 0.0
    total_iterations: int = 0
    solutions: int = 0

    @property
    def average_time_per_solution(self) -> float:
        return self.total_solver_time / self.solutions if self.solutions else 0.0

    @property
    def success_rate(self) -> float:
        return self.solved / self.attempted if self.attempted else 0.0


@dataclass
class LegalizedTopology:
    """All legal patterns produced from one topology matrix."""

    topology: np.ndarray
    patterns: list[SquishPattern] = field(default_factory=list)
    solutions: list[GeometrySolution] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return bool(self.patterns)


class Legalizer:
    """Assigns legal geometric vectors to generated topology matrices.

    Parameters
    ----------
    rules:
        Active design rules.
    reference_geometries:
        Optional list of ``(delta_x, delta_y)`` pairs from the existing
        pattern library.  When given, the solver is warm-started from a
        randomly chosen pair (``Solving-E``); otherwise it uses random
        targets (``Solving-R``).
    options:
        Numerical solver options.
    """

    def __init__(
        self,
        rules: DesignRules,
        reference_geometries: "list[tuple[np.ndarray, np.ndarray]] | None" = None,
        options: "SolverOptions | None" = None,
    ) -> None:
        self.rules = rules
        self.reference_geometries = list(reference_geometries or [])
        self.options = options if options is not None else SolverOptions()
        self.stats = LegalizationStats()

    # ------------------------------------------------------------------ #
    def _pick_targets(
        self, shape: tuple[int, int], rng: np.random.Generator
    ) -> tuple["np.ndarray | None", "np.ndarray | None"]:
        """Choose solver targets: an existing geometry pair when available."""
        rows, cols = shape
        candidates = [
            (dx, dy)
            for dx, dy in self.reference_geometries
            if len(dx) == cols and len(dy) == rows
        ]
        if not candidates:
            return None, None
        dx, dy = candidates[int(rng.integers(0, len(candidates)))]
        return np.asarray(dx, dtype=np.float64), np.asarray(dy, dtype=np.float64)

    # ------------------------------------------------------------------ #
    def legalize_topology(
        self,
        topology: np.ndarray,
        num_solutions: int = 1,
        rng: "int | np.random.Generator | None" = None,
    ) -> LegalizedTopology:
        """Produce up to ``num_solutions`` legal patterns for one topology.

        DiffPattern-S uses ``num_solutions=1``; DiffPattern-L uses a larger
        value (100 in the paper).  Each solution uses a fresh target, so the
        returned geometries differ (Fig. 7).
        """
        gen = as_rng(rng)
        topology = np.asarray(topology)
        constraints = extract_constraints(topology, self.rules.width_min, self.rules.space_min)
        result = LegalizedTopology(topology=topology.astype(np.uint8))
        self.stats.attempted += 1

        for solution_index in range(num_solutions):
            if solution_index == 0 and self.reference_geometries:
                target_x, target_y = self._pick_targets(constraints.shape, gen)
            else:
                target_x, target_y = None, None
            solution = solve_geometry(
                constraints,
                self.rules,
                target_x=target_x,
                target_y=target_y,
                rng=gen,
                options=self.options,
            )
            self.stats.total_solver_time += solution.elapsed_seconds
            self.stats.total_iterations += solution.iterations
            if not solution.success:
                # Unsolved attempts are skipped; remaining solution slots are
                # still tried with fresh random targets.
                continue
            self.stats.solutions += 1
            result.solutions.append(solution)
            result.patterns.append(
                SquishPattern(
                    topology=topology.astype(np.uint8),
                    delta_x=solution.delta_x,
                    delta_y=solution.delta_y,
                )
            )

        if result.solved:
            self.stats.solved += 1
        else:
            self.stats.failed += 1
        return result

    # ------------------------------------------------------------------ #
    def legalize_batch(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int = 1,
        rng: "int | np.random.Generator | None" = None,
    ) -> list[LegalizedTopology]:
        """Legalise a batch of topology matrices; unsolvable ones are kept in
        the output with an empty pattern list so callers can count failures."""
        gen = as_rng(rng)
        return [
            self.legalize_topology(topology, num_solutions=num_solutions, rng=gen)
            for topology in topologies
        ]

    def legal_patterns(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int = 1,
        rng: "int | np.random.Generator | None" = None,
    ) -> list[SquishPattern]:
        """Flatten :meth:`legalize_batch` into the final pattern library."""
        results = self.legalize_batch(topologies, num_solutions=num_solutions, rng=rng)
        return [pattern for result in results for pattern in result.patterns]

"""High-level legalisation API: topology matrix in, legal squish patterns out.

Implements the "2D Legal Pattern Assessment" phase of the framework
(Section III-D): every generated topology receives one (DiffPattern-S) or
many (DiffPattern-L) legal geometric-vector assignments under the active
design rules, and unsolvable topologies are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..squish import SquishPattern
from ..utils import as_rng, child_rng, resolve_seed
from .batched import solve_geometry_chunk
from .compiled import compiled_for_topology
from .rules import DesignRules
from .solver import GeometrySolution, SolverOptions, solve_geometry


@dataclass
class LegalizationStats:
    """Aggregate statistics of a legalisation run (feeds Table II)."""

    attempted: int = 0
    solved: int = 0
    failed: int = 0
    total_solver_time: float = 0.0
    total_iterations: int = 0
    solutions: int = 0
    #: How many of ``solutions`` the repair-first projection produced without
    #: an SLSQP call (always 0 under ``solver_mode="slsqp"``).
    fast_path_solutions: int = 0
    #: Whole-chunk vectorized repair sweeps run by the batched path (one per
    #: solution round per chunk under ``solver_mode="auto"``).
    batched_sweeps: int = 0
    #: Topologies covered by those sweeps (sum of sweep sizes); divide by
    #: ``batched_sweeps`` for the mean sweep width.
    batched_sweep_topologies: int = 0
    #: Per-topology SLSQP calls issued by the batched restart-round tail.
    batched_tail_solves: int = 0

    @property
    def average_time_per_solution(self) -> float:
        return self.total_solver_time / self.solutions if self.solutions else 0.0

    @property
    def success_rate(self) -> float:
        return self.solved / self.attempted if self.attempted else 0.0

    @property
    def fast_path_fraction(self) -> float:
        """Fraction of solutions legalised by the repair fast path."""
        return self.fast_path_solutions / self.solutions if self.solutions else 0.0

    @property
    def batched_sweep_mean_size(self) -> float:
        """Mean number of topologies per whole-chunk repair sweep."""
        return (
            self.batched_sweep_topologies / self.batched_sweeps
            if self.batched_sweeps
            else 0.0
        )

    def merge(self, other: "LegalizationStats") -> "LegalizationStats":
        """Fold another stats block into this one (shard aggregation)."""
        self.attempted += other.attempted
        self.solved += other.solved
        self.failed += other.failed
        self.total_solver_time += other.total_solver_time
        self.total_iterations += other.total_iterations
        self.solutions += other.solutions
        self.fast_path_solutions += other.fast_path_solutions
        self.batched_sweeps += other.batched_sweeps
        self.batched_sweep_topologies += other.batched_sweep_topologies
        self.batched_tail_solves += other.batched_tail_solves
        return self


class ReferenceIndex:
    """Warm-start target index: reference geometries bucketed by shape.

    The legaliser picks its ``Solving-E`` warm-start target uniformly among
    the reference pairs whose vector lengths match the topology's constraint
    shape.  Bucketing the library by ``(rows, cols)`` once turns that pick
    from an O(library) rescan per topology into an O(1) lookup, while
    preserving the original candidate ordering inside each bucket (so the
    uniform draw selects the same pair as the linear scan did).
    """

    def __init__(
        self, references: "list[tuple[np.ndarray, np.ndarray]] | None" = None
    ) -> None:
        self._buckets: dict[tuple[int, int], list[tuple[np.ndarray, np.ndarray]]] = {}
        self._size = 0
        for dx, dy in references or []:
            self.add(dx, dy)

    def add(self, delta_x: np.ndarray, delta_y: np.ndarray) -> None:
        """Register one ``(delta_x, delta_y)`` pair under its shape bucket."""
        pair = (
            np.asarray(delta_x, dtype=np.float64),
            np.asarray(delta_y, dtype=np.float64),
        )
        key = (len(pair[1]), len(pair[0]))  # (rows, cols)
        self._buckets.setdefault(key, []).append(pair)
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def candidates(
        self, shape: tuple[int, int]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """All reference pairs matching a ``(rows, cols)`` constraint shape."""
        return self._buckets.get((int(shape[0]), int(shape[1])), [])

    def pick(
        self, shape: tuple[int, int], rng: np.random.Generator
    ) -> "tuple[np.ndarray | None, np.ndarray | None]":
        """Uniformly draw a matching pair, or ``(None, None)`` when none fit."""
        candidates = self.candidates(shape)
        if not candidates:
            return None, None
        dx, dy = candidates[int(rng.integers(0, len(candidates)))]
        return dx, dy


@dataclass
class LegalizedTopology:
    """All legal patterns produced from one topology matrix."""

    topology: np.ndarray
    patterns: list[SquishPattern] = field(default_factory=list)
    solutions: list[GeometrySolution] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return bool(self.patterns)


class Legalizer:
    """Assigns legal geometric vectors to generated topology matrices.

    Parameters
    ----------
    rules:
        Active design rules.
    reference_geometries:
        Optional list of ``(delta_x, delta_y)`` pairs from the existing
        pattern library.  When given, the solver is warm-started from a
        randomly chosen pair (``Solving-E``); otherwise it uses random
        targets (``Solving-R``).
    options:
        Numerical solver options.
    """

    def __init__(
        self,
        rules: DesignRules,
        reference_geometries: "list[tuple[np.ndarray, np.ndarray]] | None" = None,
        options: "SolverOptions | None" = None,
    ) -> None:
        self.rules = rules
        self.reference_geometries = list(reference_geometries or [])
        self.options = options if options is not None else SolverOptions()
        self.stats = LegalizationStats()

    @property
    def reference_geometries(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """The warm-start library; assigning rebuilds the shape index.

        Appending/extending in place is also detected (via a length check on
        the next pick); replacing *elements* in place without changing the
        length is not — reassign the list for that.
        """
        return self._reference_geometries

    @reference_geometries.setter
    def reference_geometries(
        self, references: "list[tuple[np.ndarray, np.ndarray]] | None"
    ) -> None:
        self._reference_geometries = list(references or [])
        self.reference_index = ReferenceIndex(self._reference_geometries)

    # ------------------------------------------------------------------ #
    def _pick_targets(
        self, shape: tuple[int, int], rng: np.random.Generator
    ) -> tuple["np.ndarray | None", "np.ndarray | None"]:
        """Choose solver targets: an existing geometry pair when available."""
        if len(self.reference_index) != len(self._reference_geometries):
            # The public list was mutated in place (e.g. .append); re-bucket
            # so the pick sees the same candidates a linear scan would.
            self.reference_index = ReferenceIndex(self._reference_geometries)
        return self.reference_index.pick(shape, rng)

    # ------------------------------------------------------------------ #
    def legalize_topology(
        self,
        topology: np.ndarray,
        num_solutions: int = 1,
        rng: "int | np.random.Generator | None" = None,
    ) -> LegalizedTopology:
        """Produce up to ``num_solutions`` legal patterns for one topology.

        DiffPattern-S uses ``num_solutions=1``; DiffPattern-L uses a larger
        value (100 in the paper).  Each solution uses a fresh target, so the
        returned geometries differ (Fig. 7).
        """
        gen = as_rng(rng)
        topology = np.asarray(topology)
        # The compiled kernel is cached by topology content + rules, so the
        # constraint extraction and array compilation are paid once even
        # across multi-solution solves, restart attempts, and repeats of the
        # same topology within a batch.
        compiled = compiled_for_topology(topology, self.rules)
        result = LegalizedTopology(topology=topology.astype(np.uint8))
        self.stats.attempted += 1

        for solution_index in range(num_solutions):
            if solution_index == 0 and self.reference_geometries:
                target_x, target_y = self._pick_targets(compiled.shape, gen)
            else:
                target_x, target_y = None, None
            solution = solve_geometry(
                compiled,
                self.rules,
                target_x=target_x,
                target_y=target_y,
                rng=gen,
                options=self.options,
            )
            self.stats.total_solver_time += solution.elapsed_seconds
            self.stats.total_iterations += solution.iterations
            if not solution.success:
                # Unsolved attempts are skipped; remaining solution slots are
                # still tried with fresh random targets.
                continue
            self.stats.solutions += 1
            if solution.method == "repair":
                self.stats.fast_path_solutions += 1
            result.solutions.append(solution)
            result.patterns.append(
                SquishPattern(
                    topology=topology.astype(np.uint8),
                    delta_x=solution.delta_x,
                    delta_y=solution.delta_y,
                )
            )

        if result.solved:
            self.stats.solved += 1
        else:
            self.stats.failed += 1
        return result

    # ------------------------------------------------------------------ #
    def legalize_batch(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int = 1,
        rng: "int | np.random.Generator | None" = None,
        first_index: int = 0,
    ) -> list[LegalizedTopology]:
        """Legalise a batch of topology matrices; unsolvable ones are kept in
        the output with an empty pattern list so callers can count failures.

        Every topology owns an independent random stream derived from
        ``(seed, first_index + position)``, so the result for one topology
        does not depend on the composition of the batch around it: re-running
        a single topology at the same index reproduces its batch result, and
        the :class:`~repro.legalization.LegalizationEngine` gets element-wise
        identical output for any sharding of the same batch.

        When ``options.batch_solve`` is set (the default) the whole chunk is
        legalised through the cross-topology batched path
        (:mod:`repro.legalization.batched`) — bit-identical output, constant
        number of numpy passes per sweep.  ``batch_solve=False`` walks the
        per-topology reference path instead.
        """
        base_seed = resolve_seed(rng)
        if self.options.batch_solve:
            return self._legalize_batch_batched(
                topologies, num_solutions, base_seed, first_index
            )
        return [
            self.legalize_topology(
                topology,
                num_solutions=num_solutions,
                rng=child_rng(base_seed, first_index + position),
            )
            for position, topology in enumerate(topologies)
        ]

    def _legalize_batch_batched(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int,
        base_seed: int,
        first_index: int,
    ) -> list[LegalizedTopology]:
        """Chunk entry of the batched path; same stats/output as serial."""
        batch = [np.asarray(topology) for topology in topologies]
        if not batch:
            return []
        rngs = [
            child_rng(base_seed, first_index + position)
            for position in range(len(batch))
        ]
        compiled = [compiled_for_topology(topology, self.rules) for topology in batch]

        def initial_targets(position: int, rng: np.random.Generator):
            # Mirrors the serial per-topology warm-start pick exactly,
            # including its RNG draw (one uniform when candidates exist).
            if not self.reference_geometries:
                return None, None
            return self._pick_targets(compiled[position].shape, rng)

        outcome = solve_geometry_chunk(
            compiled,
            self.rules,
            rngs,
            options=self.options,
            num_solutions=num_solutions,
            initial_targets=initial_targets,
        )
        self.stats.batched_sweeps += outcome.sweeps
        self.stats.batched_sweep_topologies += outcome.sweep_topologies
        self.stats.batched_tail_solves += outcome.tail_solves

        results: list[LegalizedTopology] = []
        for topology, slots in zip(batch, outcome.solutions):
            result = LegalizedTopology(topology=topology.astype(np.uint8))
            self.stats.attempted += 1
            for solution in slots:
                self.stats.total_solver_time += solution.elapsed_seconds
                self.stats.total_iterations += solution.iterations
                if not solution.success:
                    continue
                self.stats.solutions += 1
                if solution.method == "repair":
                    self.stats.fast_path_solutions += 1
                result.solutions.append(solution)
                result.patterns.append(
                    SquishPattern(
                        topology=topology.astype(np.uint8),
                        delta_x=solution.delta_x,
                        delta_y=solution.delta_y,
                    )
                )
            if result.solved:
                self.stats.solved += 1
            else:
                self.stats.failed += 1
            results.append(result)
        return results

    def legal_patterns(
        self,
        topologies: "np.ndarray | list[np.ndarray]",
        num_solutions: int = 1,
        rng: "int | np.random.Generator | None" = None,
    ) -> list[SquishPattern]:
        """Flatten :meth:`legalize_batch` into the final pattern library."""
        results = self.legalize_batch(topologies, num_solutions=num_solutions, rng=rng)
        return [pattern for result in results for pattern in result.patterns]

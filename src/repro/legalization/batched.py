"""Cross-topology batched legalization: whole-chunk sweeps, stacked verify.

:class:`~repro.legalization.Legalizer` historically walked a chunk one
topology at a time: every solve paid its own repair projection, its own
largest-remainder rounding and its own exact integer verification — dozens
of tiny numpy calls per topology, so the Python dispatch around the
(already compiled) kernels dominated once the PR 5 fast path made each
solve cheap.  This module stacks K topologies' compiled constraint systems
into block-diagonal arrays with per-topology variable offsets and runs the
whole chunk through a *constant number* of numpy passes:

* **Whole-chunk repair sweep** — the scale/lift/round/verify projection of
  ``solve_geometry`` evaluated simultaneously for all K topologies
  (grouped by axis length so every row-wise reduction stays bit-identical
  to the serial 1-D computation), partitioning the chunk into fast-path
  successes and a residual tail in one pass.
* **Block-diagonal SLSQP tail** — the residual topologies are solved in
  restart rounds grouped by attempt number (so the restart RNG draws stay
  per-index), and each round's continuous solutions are rounded and
  integer-verified as one stacked pass over the block-diagonal system.

Bit-identity contract
---------------------
The batched path must produce output **bit-identical** to the serial
per-topology path for any chunk size, worker count and batch composition,
in both ``auto`` and ``slsqp`` modes.  Three facts make that achievable:

* Every topology owns an independent generator (``(seed, index)`` spawn
  keys), so only the *per-generator* draw order matters — and the slot /
  attempt loops below consume draws in exactly the serial order.
* Row-wise reductions over a C-contiguous 2-D stack of *equal-length* rows
  (``M.sum(axis=1)``, ``np.argsort(-R, axis=1)``) apply the identical
  pairwise reduction / sort to each row as the serial 1-D calls do, so
  grouping by exact axis length is bit-identical while zero-padding would
  not be (see :mod:`repro.legalization.compiled`).
* Integer verification is exact ``int64`` arithmetic — any grouping of the
  block-diagonal system yields the same booleans.

One thing deliberately stays per-topology: the scipy SLSQP call itself.
Stacking K independent systems into a single ``minimize`` call would share
one line search, one merit function and one ``ftol``/``maxiter``
termination across blocks, coupling the iterates — the result would be
close but **not** bit-identical to K separate solves.  The tail therefore
batches everything around scipy (target assembly, restart grouping,
stacked rounding and verification) and keeps the solver invocations
per-topology, which is also where ~all of the tail's time is genuinely
spent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .compiled import CompiledConstraints
from .rules import DesignRules
from .solver import (
    SOLVER_MODES,
    GeometrySolution,
    SolverOptions,
    _random_partition,
    _round_preserving_sum,
    _solve_once,
)

__all__ = [
    "BatchCompiledConstraints",
    "ChunkSolveOutcome",
    "solve_geometry_chunk",
]


def _project_axis_rows(
    targets: np.ndarray, lower: np.ndarray, total: int
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise ``solver._project_axis``: project every row of ``targets``
    onto ``{v >= lower[row], sum(v) = total}``.

    Returns ``(values, feasible)``; rows with ``feasible=False`` have no
    projection (their ``values`` row is meaningless).  Every arithmetic step
    mirrors the serial scalar computation elementwise, so feasible rows are
    bit-identical to ``_project_axis`` on the same row.
    """
    slack = float(total) - lower.sum(axis=1)
    t = np.maximum(targets, 1e-9)
    scale = float(total) / t.sum(axis=1)
    lifted = np.maximum(t * scale[:, None], lower)
    free = lifted - lower
    free_sum = free.sum(axis=1)
    ratio = np.divide(
        slack, free_sum, out=np.zeros_like(slack), where=free_sum > 0.0
    )
    values = lower + free * ratio[:, None]
    on_bounds = free_sum <= 0.0
    if on_bounds.any():
        # Every entry sits on its bound; feasible only when the bounds
        # already consume the whole window.
        values[on_bounds] = lower[on_bounds]
    feasible = (slack >= 0.0) & (~on_bounds | (slack == 0.0))
    return values, feasible


def _round_rows(values: np.ndarray, total: int) -> np.ndarray:
    """Row-wise ``solver._round_preserving_sum`` (largest-remainder).

    The deficit-positive branch vectorizes exactly: ``argsort(axis=1)``
    runs the identical sort per row, and ranking positions below
    ``deficit % n`` selects the same entries the serial cyclic walk
    increments.  Deficit-negative rows (possible only for SLSQP tail
    candidates far below their floors) fall back to the serial scalar
    routine per row, keeping exact parity on its iterative give-back loop.
    """
    if values.shape[0] == 0:
        return np.zeros(values.shape, dtype=np.int64)
    fractional = np.floor(values)
    floors = np.maximum(fractional.astype(np.int64), 1)
    n = values.shape[1]
    deficits = total - floors.sum(axis=1)
    positive = deficits > 0
    if positive.any():
        remainders = values - fractional
        order = np.argsort(-remainders, axis=1)
        rank = np.empty_like(order)
        np.put_along_axis(rank, order, np.broadcast_to(np.arange(n), order.shape), axis=1)
        extra = np.where(positive, deficits, 0)
        floors = floors + ((rank < (extra % n)[:, None]) & positive[:, None])
        floors = floors + (extra // n)[:, None]
    for row in np.nonzero(deficits < 0)[0]:
        floors[row] = _round_preserving_sum(values[row], total)
    return floors


class BatchCompiledConstraints:
    """K topologies' :class:`CompiledConstraints` stacked block-diagonally.

    The stacked unknown vector concatenates every topology's
    ``[delta_x, delta_y]`` block at offset ``var_offsets[i]``; all index
    matrices below address that stacked vector directly.  Constraint groups
    are merged **across** topologies by exact segment length / polygon cell
    count, so one gather + row-sum evaluates the whole chunk's constraints
    of that shape, and ``topology_ids`` maps violations back to blocks.
    Instances are immutable in practice and cover every solution round and
    restart attempt of one chunk solve.
    """

    def __init__(self, compiled: "list[CompiledConstraints]") -> None:
        if not compiled:
            raise ValueError("need at least one compiled constraint set")
        rules = compiled[0].rules
        for c in compiled:
            if c.rules != rules:
                raise ValueError(
                    "all topologies in a batch must share one DesignRules set"
                )
        self.compiled = list(compiled)
        self.rules = rules
        self.k = len(self.compiled)
        self.total = int(rules.pattern_size)
        n_vars = np.array([c.n_vars for c in self.compiled], dtype=np.int64)
        self.var_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(n_vars)]
        )
        self.n_stacked = int(self.var_offsets[-1])
        col_counts = np.array([c.cols for c in self.compiled], dtype=np.int64)

        #: ``(topology ids, axis length)`` per distinct axis length, ids
        #: ascending — every dense per-axis pass (projection, rounding,
        #: positivity/window checks) runs once per group on a (g, length)
        #: row stack.
        self.x_groups = self._axis_groups([c.cols for c in self.compiled])
        self.y_groups = self._axis_groups([c.rows for c in self.compiled])
        # Stacked-vector gather matrices for the per-axis integer checks.
        self._x_index = [
            (ids, self.var_offsets[ids][:, None] + np.arange(length))
            for ids, length in self.x_groups
        ]
        self._y_index = [
            (ids, (self.var_offsets[ids] + col_counts[ids])[:, None] + np.arange(length))
            for ids, length in self.y_groups
        ]

        # Block-diagonal interval system, merged by segment length.  Parts
        # are collected raw and offset/labelled with one vectorized pass per
        # merged group — per-part ``+ offset`` arithmetic would dominate the
        # chunk setup for large chunks.
        interval_parts: dict[int, tuple[list, list, list, list]] = {}
        for i, c in enumerate(self.compiled):
            offset = int(self.var_offsets[i])
            for positions, index_matrix in c._interval_groups:
                part = interval_parts.setdefault(
                    index_matrix.shape[1], ([], [], [], [])
                )
                part[0].append(index_matrix)
                part[1].append(c.interval_minimums[positions])
                part[2].append(i)
                part[3].append(offset)
        #: ``(index matrix, minimums, topology ids)`` per segment length.
        self.interval_groups = []
        for mats, mins, topo_idx, offs in interval_parts.values():
            counts = np.array([m.shape[0] for m in mats], dtype=np.int64)
            shifts = np.repeat(np.asarray(offs, dtype=np.int64), counts)
            self.interval_groups.append(
                (
                    np.concatenate(mats) + shifts[:, None],
                    np.concatenate(mins),
                    np.repeat(np.asarray(topo_idx, dtype=np.int64), counts),
                )
            )

        # Block-diagonal polygon-area system, merged by cell count.
        poly_parts: dict[int, tuple[list, list, list, list]] = {}
        for i, c in enumerate(self.compiled):
            offset = int(self.var_offsets[i])
            for positions, col_mat, row_mat in c._poly_groups:
                part = poly_parts.setdefault(col_mat.shape[1], ([], [], [], []))
                part[0].append(col_mat)
                part[1].append(row_mat)
                part[2].append(i)
                part[3].append(offset)
        #: ``(col matrix, row matrix, topology ids)`` per cell count.
        self.poly_groups = []
        for cols, rows, topo_idx, offs in poly_parts.values():
            counts = np.array([m.shape[0] for m in cols], dtype=np.int64)
            shifts = np.repeat(np.asarray(offs, dtype=np.int64), counts)
            self.poly_groups.append(
                (
                    np.concatenate(cols) + shifts[:, None],
                    np.concatenate(rows) + shifts[:, None],
                    np.repeat(np.asarray(topo_idx, dtype=np.int64), counts),
                )
            )

        self._repair_bounds_cache: dict[float, tuple[list, list]] = {}

    @staticmethod
    def _axis_groups(lengths: "list[int]") -> "list[tuple[np.ndarray, int]]":
        values = np.asarray(lengths, dtype=np.int64)
        return [
            (np.nonzero(values == length)[0], int(length))
            for length in np.unique(values)
        ]

    # ------------------------------------------------------------------ #
    def _stacked_repair_bounds(self, floor: float) -> tuple[list, list]:
        """Per-group ``(g, length)`` lower-bound stacks, cached per floor."""
        key = float(floor)
        cached = self._repair_bounds_cache.get(key)
        if cached is not None:
            return cached
        bounds = [c.repair_lower_bounds(floor) for c in self.compiled]
        stacked = (
            [np.stack([bounds[i][0] for i in ids]) for ids, _ in self.x_groups],
            [np.stack([bounds[i][1] for i in ids]) for ids, _ in self.y_groups],
        )
        self._repair_bounds_cache[key] = stacked
        return stacked

    # ------------------------------------------------------------------ #
    def round_pairs(
        self, candidates: "dict[int, tuple[np.ndarray, np.ndarray]]"
    ) -> "dict[int, tuple[np.ndarray, np.ndarray]]":
        """Largest-remainder-round many float candidate pairs in one pass."""
        member = np.zeros(self.k, dtype=bool)
        member[list(candidates)] = True
        rounded_x: dict[int, np.ndarray] = {}
        rounded_y: dict[int, np.ndarray] = {}
        for groups, part, out in (
            (self.x_groups, 0, rounded_x),
            (self.y_groups, 1, rounded_y),
        ):
            for ids, _ in groups:
                selected = ids[member[ids]]
                if not selected.size:
                    continue
                stack = np.stack([candidates[int(i)][part] for i in selected])
                rounded = _round_rows(stack, self.total)
                for row, i in enumerate(selected):
                    out[int(i)] = rounded[row]
        return {i: (rounded_x[i], rounded_y[i]) for i in candidates}

    def verify_pairs(
        self, pairs: "dict[int, tuple[np.ndarray, np.ndarray]]"
    ) -> np.ndarray:
        """Exact integer verification of many candidate pairs at once.

        One stacked pass over the block-diagonal system; returns a length-K
        boolean array (``False`` for topologies without a candidate).  All
        arithmetic is ``int64``-exact, so every entry equals the serial
        ``CompiledConstraints.verify_integer`` on that pair.
        """
        verified = np.zeros(self.k, dtype=bool)
        if not pairs:
            return verified
        member = np.zeros(self.k, dtype=bool)
        stacked = np.ones(self.n_stacked, dtype=np.int64)
        for i, (dx, dy) in pairs.items():
            offset = int(self.var_offsets[i])
            c = self.compiled[i]
            stacked[offset : offset + c.cols] = dx
            stacked[offset + c.cols : offset + c.n_vars] = dy
            member[i] = True
            verified[i] = True
        # Positivity + window-sum equality, per axis-length group.
        for ids, index in self._x_index + self._y_index:
            in_group = member[ids]
            if not in_group.any():
                continue
            block = stacked[index[in_group]]
            bad = (block <= 0).any(axis=1) | (block.sum(axis=1) != self.total)
            verified[ids[in_group][bad]] = False
        # Interval minimums over the merged block-diagonal groups.  Blocks
        # without a candidate hold placeholder ones; masking violations by
        # membership discards them.
        for index, minimums, topo_ids in self.interval_groups:
            sums = stacked[index].sum(axis=1)
            violated = (sums < minimums) & member[topo_ids]
            verified[topo_ids[violated]] = False
        # Two-sided polygon-area windows.
        for col_mat, row_mat, topo_ids in self.poly_groups:
            areas = (stacked[col_mat] * stacked[row_mat]).sum(axis=1)
            violated = (
                (areas < self.rules.area_min) | (areas > self.rules.area_max)
            ) & member[topo_ids]
            verified[topo_ids[violated]] = False
        return verified

    # ------------------------------------------------------------------ #
    def repair_sweep(
        self,
        targets_x: "list[np.ndarray]",
        targets_y: "list[np.ndarray]",
        options: SolverOptions,
    ) -> "tuple[dict[int, tuple[np.ndarray, np.ndarray]], list[int]]":
        """One vectorized whole-chunk repair pass over all K topologies.

        Runs the serial repair projection (scale onto the sum equality, lift
        onto the rounding-safe lower bounds, redistribute slack, round,
        verify exactly) for the entire chunk in a constant number of numpy
        passes.  Returns ``(solved, residual)``: ``solved`` maps topology
        position to its bit-identical ``(delta_x, delta_y)`` fast-path pair;
        ``residual`` lists the positions the projection could not legalise,
        ascending — the SLSQP tail's work list.
        """
        bounds_x, bounds_y = self._stacked_repair_bounds(options.lower_bound)
        feasible = np.ones(self.k, dtype=bool)
        values_x: list = [None] * self.k
        values_y: list = [None] * self.k
        for groups, bounds, targets, values in (
            (self.x_groups, bounds_x, targets_x, values_x),
            (self.y_groups, bounds_y, targets_y, values_y),
        ):
            for (ids, _), lower in zip(groups, bounds):
                stack = np.stack([targets[i] for i in ids])
                projected, ok = _project_axis_rows(stack, lower, self.total)
                feasible[ids] &= ok
                for row, i in enumerate(ids):
                    values[i] = projected[row]
        pairs: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        rounded_x: dict[int, np.ndarray] = {}
        rounded_y: dict[int, np.ndarray] = {}
        for groups, values, out in (
            (self.x_groups, values_x, rounded_x),
            (self.y_groups, values_y, rounded_y),
        ):
            for ids, _ in groups:
                selected = ids[feasible[ids]]
                if not selected.size:
                    continue
                rounded = _round_rows(
                    np.stack([values[i] for i in selected]), self.total
                )
                for row, i in enumerate(selected):
                    out[int(i)] = rounded[row]
        for i in np.nonzero(feasible)[0]:
            pairs[int(i)] = (rounded_x[int(i)], rounded_y[int(i)])
        verified = self.verify_pairs(pairs)
        solved = {i: pair for i, pair in pairs.items() if verified[i]}
        residual = [i for i in range(self.k) if i not in solved]
        return solved, residual

    def objective_values(
        self,
        pairs: "dict[int, tuple[np.ndarray, np.ndarray]]",
        targets_x: "list[np.ndarray]",
        targets_y: "list[np.ndarray]",
    ) -> "dict[int, float]":
        """Least-squares objectives of many integer pairs in stacked passes.

        The serial path dots one concatenated ``[delta_x, delta_y]`` diff
        vector per solution; here every ``(rows, cols)`` shape group runs as
        one batched 1xN @ Nx1 matmul, which invokes the same BLAS inner
        product per row and is therefore bit-identical to the serial
        ``diff @ diff`` (asserted by the batched-vs-serial test suite).
        """
        objectives: dict[int, float] = {}
        if not pairs:
            return objectives
        by_shape: dict[tuple[int, int], list[int]] = {}
        for i in pairs:
            by_shape.setdefault(self.compiled[i].shape, []).append(i)
        for ids in by_shape.values():
            deltas = np.concatenate(
                [
                    np.stack([pairs[i][0] for i in ids]),
                    np.stack([pairs[i][1] for i in ids]),
                ],
                axis=1,
            ).astype(np.float64)
            targets = np.concatenate(
                [
                    np.stack([targets_x[i] for i in ids]),
                    np.stack([targets_y[i] for i in ids]),
                ],
                axis=1,
            )
            diffs = deltas - targets
            dots = (diffs[:, None, :] @ diffs[:, :, None]).reshape(-1)
            for row, i in enumerate(ids):
                objectives[i] = float(dots[row]) / self.total
        return objectives


@dataclass
class ChunkSolveOutcome:
    """Solutions and batched-path counters for one chunk solve."""

    #: Per topology position, one :class:`GeometrySolution` per requested
    #: solution slot (success or failure), in slot order — exactly what the
    #: serial per-topology loop would have produced.
    solutions: "list[list[GeometrySolution]]" = field(default_factory=list)
    #: Whole-chunk repair sweeps executed (one per solution round in auto).
    sweeps: int = 0
    #: Topologies covered by those sweeps (sum of sweep sizes).
    sweep_topologies: int = 0
    #: Per-topology SLSQP calls issued by the restart-round tail.
    tail_solves: int = 0


def solve_geometry_chunk(
    compiled: "list[CompiledConstraints]",
    rules: DesignRules,
    rngs: "list[np.random.Generator]",
    options: "SolverOptions | None" = None,
    num_solutions: int = 1,
    initial_targets=None,
) -> ChunkSolveOutcome:
    """Solve a whole chunk of topologies, bit-identical to serial solves.

    ``rngs[i]`` is topology ``i``'s independent generator (the caller derives
    it from ``(seed, first_index + i)``); ``initial_targets(i, rng)``, when
    given, supplies the solution-0 warm-start targets (``Solving-E``) and may
    consume draws from ``rng`` exactly as the serial target pick does.  Draw
    order per generator matches the serial path: solution slots are the outer
    loop, and within a slot the restart rounds draw fresh targets in attempt
    order — so every topology sees the identical stream it would alone.
    """
    opts = options if options is not None else SolverOptions()
    if opts.solver_mode not in SOLVER_MODES:
        raise ValueError(
            f"solver_mode must be one of {SOLVER_MODES}, got {opts.solver_mode!r}"
        )
    if len(rngs) != len(compiled):
        raise ValueError("need exactly one generator per topology")
    outcome = ChunkSolveOutcome(solutions=[[] for _ in compiled])
    if not compiled:
        return outcome
    for c in compiled:
        if c.rules != rules:
            raise ValueError(
                "compiled constraints were built for a different DesignRules set"
            )
    batch = BatchCompiledConstraints(compiled)
    total = rules.pattern_size

    for slot in range(num_solutions):
        # Attempt-1 targets, drawn per topology in index order (the repair
        # sweep consumes no extra draws and shares them with SLSQP attempt 1).
        targets_x: list[np.ndarray] = []
        targets_y: list[np.ndarray] = []
        for i, c in enumerate(compiled):
            tx = ty = None
            if slot == 0 and initial_targets is not None:
                tx, ty = initial_targets(i, rngs[i])
            tx = (
                np.asarray(tx, dtype=np.float64)
                if tx is not None
                else _random_partition(total, c.cols, rngs[i])
            )
            ty = (
                np.asarray(ty, dtype=np.float64)
                if ty is not None
                else _random_partition(total, c.rows, rngs[i])
            )
            if tx.shape[0] != c.cols or ty.shape[0] != c.rows:
                raise ValueError(
                    f"target vectors have wrong length (need {c.cols} x-targets, "
                    f"{c.rows} y-targets)"
                )
            targets_x.append(tx)
            targets_y.append(ty)

        pending = list(range(batch.k))
        sweep_share = 0.0
        if opts.solver_mode == "auto":
            sweep_start = time.perf_counter()
            solved, pending = batch.repair_sweep(targets_x, targets_y, opts)
            sweep_share = (time.perf_counter() - sweep_start) / batch.k
            outcome.sweeps += 1
            outcome.sweep_topologies += batch.k
            objectives = batch.objective_values(solved, targets_x, targets_y)
            for i, (dx, dy) in solved.items():
                outcome.solutions[i].append(
                    GeometrySolution(
                        success=True,
                        delta_x=dx,
                        delta_y=dy,
                        iterations=0,
                        elapsed_seconds=sweep_share,
                        message="repaired",
                        attempts=1,
                        objective=objectives[i],
                        method="repair",
                    )
                )

        # Block-diagonal SLSQP tail: restart rounds grouped by attempt
        # number.  scipy runs per topology (see module docstring), while the
        # round's rounding + integer verification are one stacked pass.  The
        # stacked system is rebuilt over the residual alone so each round
        # scales with the tail, not the chunk (rounding is per-row and the
        # verification is int64-exact, so the regrouping is bit-identical).
        if pending and len(pending) < batch.k:
            tail_batch = BatchCompiledConstraints([compiled[i] for i in pending])
        else:
            tail_batch = batch
        tail_pos = {i: pos for pos, i in enumerate(pending)}
        iterations = {i: 0 for i in pending}
        seconds = {i: sweep_share for i in pending}
        messages = {i: "" for i in pending}
        active = list(pending)
        for attempt in range(1, opts.max_attempts + 1):
            if not active:
                break
            for i in active:
                if attempt > 1:
                    targets_x[i] = _random_partition(total, compiled[i].cols, rngs[i])
                    targets_y[i] = _random_partition(total, compiled[i].rows, rngs[i])
            converged: dict[int, dict] = {}
            for i in active:
                solve_start = time.perf_counter()
                result = _solve_once(compiled[i], targets_x[i], targets_y[i], opts)
                seconds[i] += time.perf_counter() - solve_start
                outcome.tail_solves += 1
                iterations[i] += result["iterations"]
                if result["success"]:
                    converged[i] = result
                else:
                    messages[i] = result["message"]
            rounded: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            verified = np.zeros(tail_batch.k, dtype=bool)
            if converged:
                stacked_start = time.perf_counter()
                rounded_local = tail_batch.round_pairs(
                    {
                        tail_pos[i]: (r["delta_x"], r["delta_y"])
                        for i, r in converged.items()
                    }
                )
                verified = tail_batch.verify_pairs(rounded_local)
                rounded = {i: rounded_local[tail_pos[i]] for i in converged}
                stacked_share = (time.perf_counter() - stacked_start) / len(converged)
                for i in converged:
                    seconds[i] += stacked_share
            still_active = []
            for i in active:
                if i in converged and verified[tail_pos[i]]:
                    dx, dy = rounded[i]
                    outcome.solutions[i].append(
                        GeometrySolution(
                            success=True,
                            delta_x=dx,
                            delta_y=dy,
                            iterations=iterations[i],
                            elapsed_seconds=seconds[i],
                            message="converged",
                            attempts=attempt,
                            objective=converged[i]["objective"],
                        )
                    )
                else:
                    if i in converged:
                        messages[i] = "rounded solution violated a constraint"
                    still_active.append(i)
            active = still_active
        for i in active:
            outcome.solutions[i].append(
                GeometrySolution(
                    success=False,
                    delta_x=None,
                    delta_y=None,
                    iterations=iterations[i],
                    elapsed_seconds=seconds[i],
                    message=messages[i] or "no feasible solution found",
                    attempts=max(opts.max_attempts, 0),
                )
            )
    return outcome

"""Compiled constraint kernels for the 2D legal pattern assessment.

:func:`~repro.legalization.solve_geometry` historically registered one Python
lambda per width/space/area constraint and SLSQP re-invoked every one of them
(plus its jacobian) on every iteration — a scalar-Python tax of hundreds of
interpreter round-trips per solve.  This module compiles a
:class:`~repro.legalization.TopologyConstraints` into stacked index arrays
**once per topology** so that each SLSQP iteration evaluates

* all interval (width/space) constraints with one gather + row-sum per
  distinct segment length,
* all polygon-area constraints with one elementwise product + row-sum per
  distinct cell count, and
* all jacobians from precomputed constant matrices (intervals) or two
  ``bincount`` scatters (areas),

handing scipy a *constant number* of vector-valued constraint dicts instead
of an O(#constraints) lambda list.

Bit-identity contract
---------------------
``solver_mode="slsqp"`` must reproduce the legacy formulation bit for bit
(the ``paper-tables`` scenario and its committed baselines are pinned to it).
scipy's SLSQP writes each constraint dict's values/jacobian rows into
preallocated arrays in dict order, so equality holds exactly when every
individual constraint value is computed bit-identically.  Two NumPy facts
shape the layout:

* Summing the rows of a C-contiguous 2-D array (``M.sum(axis=1)``) uses the
  same pairwise reduction as summing each row as a contiguous 1-D array —
  so gathering *equal-length* segments into a matrix and row-summing is
  bit-identical to the legacy per-constraint ``v[idx].sum()``.
* Zero-padding segments to a common width, or taking prefix-sum differences,
  changes the pairwise reduction tree and is **not** bit-identical.

Hence constraints are grouped by exact segment length / polygon cell count;
each group evaluates in one vectorized shot with no padding.

The module also hosts the repair-first fast path's building blocks
(per-index lower bounds, exact integer verification) and a topology-hash
compilation cache that dedupes extraction + compilation across Solving-R
restart attempts, multi-solution (DiffPattern-L) solves, and repeated
topologies in a batch.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from ..geometry import validate_grid
from .constraints import TopologyConstraints, extract_constraints
from .rules import DesignRules

__all__ = [
    "CompiledConstraints",
    "compile_constraints",
    "compiled_for_topology",
    "compilation_cache_info",
    "clear_compilation_cache",
    "set_compilation_cache_capacity",
]


def _length_groups(
    lengths: np.ndarray,
) -> "list[tuple[np.ndarray, int]]":
    """``(positions, length)`` pairs, one per distinct segment length."""
    groups = []
    for length in np.unique(lengths):
        positions = np.nonzero(lengths == length)[0]
        groups.append((positions, int(length)))
    return groups


class CompiledConstraints:
    """A :class:`TopologyConstraints` lowered to stacked numpy arrays.

    The unknown vector ``v`` is ``concatenate([delta_x, delta_y])`` —
    ``n_vars = cols + rows`` entries.  All index arrays below address ``v``
    directly (y-axis constraints carry the ``+ cols`` offset baked in).
    Instances are immutable in practice and safe to share across solves of
    the same topology under the same rules.
    """

    def __init__(self, constraints: TopologyConstraints, rules: DesignRules) -> None:
        self.constraints = constraints
        self.rules = rules
        rows, cols = constraints.shape
        self.shape = (rows, cols)
        self.rows = rows
        self.cols = cols
        self.n_vars = cols + rows
        self.total = float(rules.pattern_size)

        # ---------------- interval (width / space) constraints ------------ #
        intervals = constraints.all_interval_constraints
        self.n_intervals = len(intervals)
        starts = np.empty(self.n_intervals, dtype=np.int64)
        lengths = np.empty(self.n_intervals, dtype=np.int64)
        minimums = np.empty(self.n_intervals, dtype=np.float64)
        is_x = np.empty(self.n_intervals, dtype=bool)
        for i, constraint in enumerate(intervals):
            offset = 0 if constraint.axis == "x" else cols
            starts[i] = constraint.start + offset
            lengths[i] = constraint.end - constraint.start + 1
            minimums[i] = float(constraint.minimum)
            is_x[i] = constraint.axis == "x"
        self.interval_minimums = minimums
        self._interval_starts = starts
        self._interval_lengths = lengths
        self._interval_is_x = is_x
        #: ``(positions, (k, L) index matrix)`` per distinct segment length;
        #: equal-length grouping keeps each row-sum bit-identical to the
        #: legacy per-constraint slice sum (see module docstring).
        self._interval_groups: list[tuple[np.ndarray, np.ndarray]] = [
            (positions, starts[positions][:, None] + np.arange(length)[None, :])
            for positions, length in _length_groups(lengths)
        ]
        jac = np.zeros((self.n_intervals, self.n_vars))
        for i in range(self.n_intervals):
            jac[i, starts[i] : starts[i] + lengths[i]] = 1.0
        self.interval_jacobian = jac

        # ---------------- polygon-area constraints ------------------------ #
        polygons = constraints.polygon_cells
        self.n_polygons = len(polygons)
        cell_counts = np.array([len(cells) for cells in polygons], dtype=np.int64)
        # Flattened COO cell arrays in polygon-major cell order (the order
        # the legacy per-polygon ``np.add.at`` scattered in).
        poly_ids = np.repeat(np.arange(self.n_polygons, dtype=np.int64), cell_counts)
        flat_rows = np.concatenate(
            [np.asarray([r for r, _ in cells], dtype=np.int64) for cells in polygons]
        ) if self.n_polygons else np.empty(0, dtype=np.int64)
        flat_cols = np.concatenate(
            [np.asarray([c for _, c in cells], dtype=np.int64) for cells in polygons]
        ) if self.n_polygons else np.empty(0, dtype=np.int64)
        self._poly_ids = poly_ids
        self._poly_col_vars = flat_cols                  # indices into v[:cols]
        self._poly_row_vars = cols + flat_rows           # indices into v[cols:]
        #: ``(positions, (k, L) col matrix, (k, L) row matrix)`` per distinct
        #: polygon cell count, cells in the same order as ``polygon_cells``.
        self._poly_groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        bounds = np.cumsum(np.concatenate([[0], cell_counts]))
        for positions, count in _length_groups(cell_counts) if self.n_polygons else []:
            col_mat = np.empty((positions.size, count), dtype=np.int64)
            row_mat = np.empty((positions.size, count), dtype=np.int64)
            for k, p in enumerate(positions):
                col_mat[k] = self._poly_col_vars[bounds[p] : bounds[p + 1]]
                row_mat[k] = self._poly_row_vars[bounds[p] : bounds[p + 1]]
            self._poly_groups.append((positions, col_mat, row_mat))

        # Rounding each interval by at most 1 nm can change a polygon's area
        # by up to ~2 * pattern_size + (#cells), so the continuous solve must
        # stay that far inside the legal area window for the rounded solution
        # to verify (same formula as the legacy solver).
        area_margin = 2.0 * self.total + rows * cols
        if rules.area_max - rules.area_min <= 2.0 * area_margin:
            area_margin = max(0.0, (rules.area_max - rules.area_min) / 4.0)
        self.area_margin = area_margin

        # ---------------- equality constraints ---------------------------- #
        self.equality_jacobian = np.zeros((2, self.n_vars))
        self.equality_jacobian[0, :cols] = 1.0
        self.equality_jacobian[1, cols:] = 1.0

        self._repair_bounds_cache: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # kernel evaluation
    # ------------------------------------------------------------------ #
    def interval_values(self, v: np.ndarray) -> np.ndarray:
        """``sum(v[segment])`` per interval constraint, constraint order."""
        out = np.empty(self.n_intervals)
        for positions, index_matrix in self._interval_groups:
            out[positions] = v[index_matrix].sum(axis=1)
        return out

    def polygon_areas(self, v: np.ndarray) -> np.ndarray:
        """``sum(delta_x[c] * delta_y[r])`` per polygon, polygon order."""
        out = np.empty(self.n_polygons)
        for positions, col_mat, row_mat in self._poly_groups:
            out[positions] = (v[col_mat] * v[row_mat]).sum(axis=1)
        return out

    def polygon_area_jacobian(self, v: np.ndarray) -> np.ndarray:
        """``(n_polygons, n_vars)`` gradient of every polygon area at ``v``.

        Two ``bincount`` scatters over the flattened COO arrays; the column
        and row variable slots are disjoint, and ``bincount`` accumulates in
        input (= polygon-major cell) order, so every entry matches the legacy
        per-polygon ``np.add.at`` bit for bit.
        """
        size = self.n_polygons * self.n_vars
        flat_col = self._poly_ids * self.n_vars + self._poly_col_vars
        flat_row = self._poly_ids * self.n_vars + self._poly_row_vars
        by_col = np.bincount(flat_col, weights=v[self._poly_row_vars], minlength=size)
        by_row = np.bincount(flat_row, weights=v[self._poly_col_vars], minlength=size)
        return (by_col + by_row).reshape(self.n_polygons, self.n_vars)

    def equality_values(self, v: np.ndarray) -> np.ndarray:
        """Window-sum residuals ``[sum(delta_x) - P, sum(delta_y) - P]``."""
        return np.array(
            [v[: self.cols].sum() - self.total, v[self.cols :].sum() - self.total]
        )

    # ------------------------------------------------------------------ #
    # SLSQP constraint assembly
    # ------------------------------------------------------------------ #
    def slsqp_constraints(self, margin: float) -> list[dict]:
        """The scipy constraint dicts of Eq. (14) over this kernel.

        scipy fills constraint values and jacobian rows into preallocated
        arrays in dict order (eq dicts first, then ineq dicts), so the
        concatenated system it sees is element-for-element the one the legacy
        per-constraint lambda list produced: the two sum equalities, every
        interval constraint in extraction order, then the polygon lower/upper
        area bounds interleaved per polygon.
        """
        cons: list[dict] = [
            {
                "type": "eq",
                "fun": self.equality_values,
                "jac": lambda v: self.equality_jacobian,
            }
        ]
        if self.n_intervals:
            bounds = self.interval_minimums + margin
            cons.append(
                {
                    "type": "ineq",
                    "fun": lambda v, bounds=bounds: self.interval_values(v) - bounds,
                    "jac": lambda v: self.interval_jacobian,
                }
            )
        if self.n_polygons:
            lower = self.rules.area_min + self.area_margin
            upper = self.rules.area_max - self.area_margin
            p = self.n_polygons

            def area_fun(v: np.ndarray) -> np.ndarray:
                areas = self.polygon_areas(v)
                out = np.empty(2 * p)
                out[0::2] = areas - lower
                out[1::2] = upper - areas
                return out

            def area_jac(v: np.ndarray) -> np.ndarray:
                jac = self.polygon_area_jacobian(v)
                out = np.empty((2 * p, self.n_vars))
                out[0::2] = jac
                out[1::2] = -jac
                return out

            cons.append({"type": "ineq", "fun": area_fun, "jac": area_jac})
        return cons

    # ------------------------------------------------------------------ #
    # repair-first fast path support
    # ------------------------------------------------------------------ #
    def repair_lower_bounds(self, floor: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-index lower bounds ``(lb_x, lb_y)`` for the repair projection.

        An integer vector with ``delta[i] >= lb[i]`` for every index
        automatically satisfies every interval constraint **after rounding**:
        each index carries ``ceil(minimum / length)`` of its tightest
        covering constraint, so a length-``L`` constraint sums to at least
        ``L * ceil(minimum / L) >= minimum`` even when every entry was
        rounded down to the bound.  Area constraints are not representable
        per index and are left to exact verification.
        """
        key = float(floor)
        cached = self._repair_bounds_cache.get(key)
        if cached is not None:
            return cached
        lb = np.full(self.n_vars, max(1.0, np.ceil(floor)))
        if self.n_intervals:
            per_index = np.ceil(self.interval_minimums / self._interval_lengths)
            flat_values = np.repeat(per_index, self._interval_lengths)
            flat_indices = np.concatenate(
                [
                    np.arange(start, start + length)
                    for start, length in zip(self._interval_starts, self._interval_lengths)
                ]
            )
            np.maximum.at(lb, flat_indices, flat_values)
        result = (lb[: self.cols].copy(), lb[self.cols :].copy())
        self._repair_bounds_cache[key] = result
        return result

    def verify_integer(self, delta_x: np.ndarray, delta_y: np.ndarray) -> bool:
        """Exact integer re-check of Eq. (14) on rounded vectors."""
        dx = np.asarray(delta_x, dtype=np.int64)
        dy = np.asarray(delta_y, dtype=np.int64)
        if (dx <= 0).any() or (dy <= 0).any():
            return False
        if int(dx.sum()) != self.rules.pattern_size:
            return False
        if int(dy.sum()) != self.rules.pattern_size:
            return False
        v = np.concatenate([dx, dy])
        for positions, index_matrix in self._interval_groups:
            sums = v[index_matrix].sum(axis=1)
            if (sums < self.interval_minimums[positions]).any():
                return False
        for positions, col_mat, row_mat in self._poly_groups:
            areas = (v[col_mat] * v[row_mat]).sum(axis=1)
            if (areas < self.rules.area_min).any() or (areas > self.rules.area_max).any():
                return False
        return True


def compile_constraints(
    constraints: TopologyConstraints, rules: DesignRules
) -> CompiledConstraints:
    """Lower one extracted constraint set to its stacked-array kernel."""
    return CompiledConstraints(constraints, rules)


# --------------------------------------------------------------------------- #
# topology-hash compilation cache
# --------------------------------------------------------------------------- #
# Constraint extraction + compilation is pure in (topology bytes, rules), so
# one bounded LRU dedupes the work across Solving-R restart attempts,
# DiffPattern-L multi-solution solves, and repeated topologies in a batch.
# Worker processes each hold their own cache (no cross-process sharing).
# The capacity bounds memory, not correctness: a compiled kernel holds a
# dense (n_intervals, n_vars) jacobian, which reaches a few MB per entry at
# paper scale (128x128 grids), and every pool worker owns a cache.  The
# reuse the cache targets is temporally local — restart attempts and
# multi-solution solves reuse the object handed to solve_geometry directly;
# only cross-call repeats of the same topology go through the LRU — so a
# small window captures it.
_CACHE: "OrderedDict[tuple, CompiledConstraints]" = OrderedDict()
_CACHE_CAPACITY_DEFAULT = 32
_CACHE_HITS = 0
_CACHE_MISSES = 0


def _env_capacity(strict: bool) -> int:
    """Resolve the capacity from ``REPRO_COMPILE_CACHE`` (or the default).

    Serve workloads that interleave many scenarios (and hence many distinct
    topologies per process) can raise the window without code changes.  At
    import time a malformed value silently falls back to the default so that
    ``import repro`` never fails; :func:`set_compilation_cache_capacity`
    re-reads it strictly.
    """
    env = os.environ.get("REPRO_COMPILE_CACHE", "").strip()
    if not env:
        return _CACHE_CAPACITY_DEFAULT
    try:
        capacity = int(env)
    except ValueError:
        if strict:
            raise ValueError(
                f"REPRO_COMPILE_CACHE must be a positive integer, got {env!r}"
            ) from None
        return _CACHE_CAPACITY_DEFAULT
    if capacity < 1:
        if strict:
            raise ValueError(
                f"REPRO_COMPILE_CACHE must be a positive integer, got {env!r}"
            )
        return _CACHE_CAPACITY_DEFAULT
    return capacity


_CACHE_CAPACITY = _env_capacity(strict=False)


def set_compilation_cache_capacity(capacity: "int | None" = None) -> int:
    """Resize the process-local compilation LRU; returns the new capacity.

    ``None`` re-reads ``REPRO_COMPILE_CACHE`` (strictly — a malformed value
    raises here) and falls back to the built-in default of
    ``_CACHE_CAPACITY_DEFAULT`` entries.  Shrinking evicts the
    least-recently-used kernels immediately; counters are untouched.
    """
    global _CACHE_CAPACITY
    if capacity is None:
        capacity = _env_capacity(strict=True)
    capacity = int(capacity)
    if capacity < 1:
        raise ValueError(f"compilation cache capacity must be >= 1, got {capacity}")
    _CACHE_CAPACITY = capacity
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)
    return _CACHE_CAPACITY


def compiled_for_topology(
    topology: np.ndarray, rules: DesignRules
) -> CompiledConstraints:
    """The compiled kernel for one topology matrix, LRU-cached by content."""
    global _CACHE_HITS, _CACHE_MISSES
    grid = validate_grid(topology)
    key = (grid.shape, grid.tobytes(), rules)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        _CACHE_HITS += 1
        return cached
    _CACHE_MISSES += 1
    constraints = extract_constraints(grid, rules.width_min, rules.space_min)
    compiled = compile_constraints(constraints, rules)
    _CACHE[key] = compiled
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)
    return compiled


def compilation_cache_info() -> dict:
    """Hit/miss/size/capacity counters of the process-local compilation cache."""
    return {
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
        "size": len(_CACHE),
        "capacity": _CACHE_CAPACITY,
    }


def clear_compilation_cache() -> None:
    """Drop all cached kernels and reset the counters (test isolation)."""
    global _CACHE_HITS, _CACHE_MISSES
    _CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0

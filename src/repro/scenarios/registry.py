"""Named scenario registry with inheritance resolution and built-ins.

The registry maps scenario names to :class:`~repro.scenarios.ScenarioSpec`
objects and resolves ``extends`` chains (child-over-parent merge, cycle and
unknown-target detection).  :func:`builtin_registry` returns a fresh registry
pre-populated with the seven shipped scenarios:

=================== =========================================================
``smoke``           Seconds-scale end-to-end run; the CI / CLI smoke gate.
``paper-tables``    Paper-faithful Table I/II regime at benchmark scale —
                    lowers bit-identically to the config the benchmark
                    harness has always used.
``fewstep-tables``  ``paper-tables`` sampled over a respaced 6-step chain
                    (5.3x fewer U-Net evaluations; quality-gated by
                    ``benchmarks/bench_fewstep_sampling.py``).
``dense``           High-volume DiffPattern-L library build (laptop preset,
                    4 geometric solutions per topology, deduplicated store).
``sparse``          ``dense`` under the Fig. 8b migrated rules (3x minimum
                    spacing) with the thin-sliver prefilter enabled.
``rule-migration``  ``paper-tables`` re-legalised under the Fig. 8c rules
                    (5x smaller maximum area) — no retraining required.
``hotspot-expansion`` DiffPattern-L library multiplication for hotspot-
                    detector training data (8 solutions per topology,
                    respaced 6-step sampler for throughput).
=================== =========================================================
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..legalization import LARGER_SPACE_RULES, SMALLER_AREA_RULES
from .spec import ScenarioError, ScenarioSpec

__all__ = ["ScenarioRegistry", "builtin_registry", "BUILTIN_SCENARIOS"]


#: Raw built-in specifications.  Kept as plain dicts (the same shape a TOML
#: file produces) so the builtins exercise exactly the user-facing codec.
BUILTIN_SCENARIOS: dict[str, dict] = {
    "smoke": {
        "description": "Seconds-scale end-to-end smoke run (CI gate scale)",
        "preset": "tiny",
        "training": {"iterations": 150, "num_patterns": 48},
        "engine": {"stream_chunk_size": 4},
        "run": {"num_generated": 8, "num_solutions": 1, "seed": 0},
    },
    "paper-tables": {
        "description": "Paper-faithful Table I/II regime at benchmark scale",
        "preset": "tiny",
        "diffusion": {"num_steps": 32, "lambda_ce": 0.05},
        "training": {"iterations": 900, "num_patterns": 256},
        # Pinned to the full SLSQP solve: the committed Table I/II baselines
        # were recorded with it, and "slsqp" is the bit-identical mode (the
        # repair-first "auto" default is faster but yields different — still
        # legal — geometries).  Inherited by the scenarios extending this one.
        "engine": {"solver_mode": "slsqp"},
        "run": {"num_generated": 24, "num_solutions": 1, "seed": 0},
    },
    "fewstep-tables": {
        "description": "Table I/II regime on the respaced 6-step sampler (5.3x fewer U-Net evals)",
        "extends": "paper-tables",
        # 6 of the trained 32 steps: the default few-step operating point the
        # quality gate in benchmarks/bench_fewstep_sampling.py keeps in band.
        "sampling": {"steps": 6},
    },
    "dense": {
        "description": "High-volume DiffPattern-L library build under normal rules",
        "preset": "laptop",
        "training": {"num_patterns": 512},
        "engine": {"workers": 0, "stream_chunk_size": 32},
        "run": {"num_generated": 256, "num_solutions": 4, "dedup": True, "seed": 0},
    },
    "sparse": {
        "description": "Sparse regime: Fig. 8b larger minimum spacing, sliver filter on",
        "extends": "dense",
        # Derived from the named Fig. 8b constant so the scenario and
        # repro.legalization.rules cannot diverge.
        "rules": {"space_min": LARGER_SPACE_RULES.space_min},
        "prefilter": {"reject_single_cell_polygons": True},
        "run": {"num_solutions": 1},
    },
    "rule-migration": {
        "description": "Fig. 8c rule migration: smaller area_max, same trained model",
        "extends": "paper-tables",
        "rules": {"area_max": SMALLER_AREA_RULES.area_max},
    },
    "hotspot-expansion": {
        "description": "DiffPattern-L library multiplication for hotspot training data",
        "extends": "paper-tables",
        # Library multiplication is throughput-bound, so this child opts back
        # into the repair-first fast path its parent pins off and samples the
        # respaced few-step chain instead of the full one.
        "engine": {"solver_mode": "auto"},
        "sampling": {"steps": 6},
        "run": {"num_solutions": 8, "num_generated": 16, "dedup": True},
    },
}

#: Safety bound on ``extends`` chains; real chains are 2-3 deep, so hitting
#: it means a cycle that slipped past direct detection.
_MAX_CHAIN = 32


class ScenarioRegistry:
    """Mutable name -> spec mapping with ``extends`` resolution."""

    def __init__(self, specs: "Iterable[ScenarioSpec] | None" = None) -> None:
        self._specs: dict[str, ScenarioSpec] = {}
        for spec in specs or ():
            self.register(spec)

    # ------------------------------------------------------------------ #
    def register(self, spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
        """Add ``spec`` under its name.

        Raises
        ------
        ScenarioError
            If the name is already registered and ``replace`` is not set —
            silently shadowing a built-in would make scenario files
            order-dependent.
        """
        if spec.name in self._specs and not replace:
            raise ScenarioError(
                f"scenario {spec.name!r} is already registered; "
                "pass replace=True to shadow it"
            )
        self._specs[spec.name] = spec
        return spec

    def register_dict(self, name: str, data: Mapping, replace: bool = False) -> ScenarioSpec:
        """Validate and register one raw mapping (TOML table / JSON object)."""
        return self.register(ScenarioSpec.from_dict(name, data), replace=replace)

    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Registered scenario names, sorted."""
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def get(self, name: str) -> ScenarioSpec:
        """The raw (unresolved) spec registered under ``name``.

        Raises
        ------
        ScenarioError
            For an unknown name; the message lists what is available.
        """
        try:
            return self._specs[name]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; available: {', '.join(self.names())}"
            ) from None

    def resolve(self, name: str) -> ScenarioSpec:
        """The spec under ``name`` with its whole ``extends`` chain flattened.

        Child values win per key; the returned spec has ``extends=None`` and
        lowers directly.

        Raises
        ------
        ScenarioError
            On an unknown name anywhere in the chain, or a cyclic chain
            (``a extends b extends a``).
        """
        spec = self.get(name)
        seen = [name]
        while spec.extends is not None:
            parent_name = spec.extends
            if parent_name in seen or len(seen) > _MAX_CHAIN:
                raise ScenarioError(
                    f"scenario {name!r}: cyclic extends chain {' -> '.join(seen + [parent_name])}"
                )
            seen.append(parent_name)
            spec = spec.merged_over(self.get(parent_name))
        return spec


def builtin_registry() -> ScenarioRegistry:
    """A fresh registry holding (only) the built-in scenarios."""
    registry = ScenarioRegistry()
    for name, data in BUILTIN_SCENARIOS.items():
        registry.register_dict(name, data)
    return registry

"""Declarative scenario specifications and their lowering to pipeline configs.

A *scenario* names one complete workload regime of the DiffPattern system:
which design rules are active, how large the topology grid is, how the
diffusion model is shaped and trained, how many patterns are generated with
how many geometric solutions each, and how the run is streamed, sharded and
persisted.  PRs 1-3 built the machinery (batched sampling, sharded
legalization, streaming graph + resumable library); scenarios are the
declarative layer that names whole configurations of that machinery so they
can be launched from the CLI (``python -m repro generate --scenario NAME``),
from the examples, and from the benchmark harnesses without hand-rolled
config literals.

A specification is a small nested mapping with a fixed schema::

    {
        "description": "...",
        "extends": "other-scenario",        # optional inheritance
        "preset": "tiny" | "laptop" | "paper",
        "rules":     {... DesignRules fields ...},
        "dataset":   {"matrix_size": ..., "channels": ..., "test_fraction": ...},
        "diffusion": {... DiffusionConfig fields ...},
        "prefilter": {... PrefilterConfig fields ...},
        "model":     {"model_channels": ..., "channel_mult": ..., ...},
        "training":  {"iterations": ..., "batch_size": ..., "num_patterns": ...},
        "engine":    {"sample_batch_size": ..., "workers": ..., ...},
        "sampling":  {"steps": ...},        # 0 = walk the full chain

        "run":       {"num_generated": ..., "num_solutions": ..., "seed": ...,
                      "stream": ..., "dedup": ..., "retain_topologies": ...},
    }

Unknown sections and unknown keys raise :class:`ScenarioError` immediately —
a typo in a scenario file must fail loudly, not silently fall back to a
default.  The per-section key sets are derived from the underlying config
dataclasses, so a new ``DiffusionConfig`` field is automatically legal in
scenario files.

:meth:`ScenarioSpec.lower` turns a (resolved) specification into a
:class:`RunPlan`: a fully-built :class:`~repro.pipeline.DiffPatternConfig`
plus the run-shaping values (`num_generated`, `num_solutions`, seed, stream
and dedup flags) that live outside the config object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from ..data import DatasetConfig
from ..diffusion import DiffusionConfig
from ..legalization import SOLVER_MODES, DesignRules
from ..prefilter import PrefilterConfig

__all__ = ["ScenarioError", "ScenarioSpec", "RunPlan", "SECTION_KEYS"]


class ScenarioError(ValueError):
    """A scenario specification is malformed, unknown, or inconsistent."""


#: Presets map to the :class:`~repro.pipeline.DiffPatternConfig` classmethod
#: constructors of the same name.
PRESETS = ("tiny", "laptop", "paper")

#: DiffPatternConfig fields settable through the ``model`` section.
_MODEL_KEYS = (
    "model_channels",
    "channel_mult",
    "num_res_blocks",
    "attention_resolutions",
    "dropout",
)

#: DiffPatternConfig fields settable through the ``engine`` section.
_ENGINE_KEYS = (
    "sample_batch_size",
    "workers",
    "legalize_chunk_size",
    "stream_chunk_size",
    "solver_mode",
    "batch_solve",
)

#: Engine fields that hold strings (everything else coerces through int).
_ENGINE_STR_KEYS = ("solver_mode",)

#: Engine fields that hold booleans (``int()`` coercion would mangle them).
_ENGINE_BOOL_KEYS = ("batch_solve",)

#: DiffPatternConfig fields settable through the ``sampling`` section.
#: ``steps`` strides the reverse sampler (``sampling_steps`` on the config);
#: ``0`` means "walk the full chain" (TOML has no null literal).
_SAMPLING_KEYS = ("steps",)

_TRAINING_KEYS = ("iterations", "batch_size", "num_patterns")

_RUN_KEYS = (
    "num_generated",
    "num_solutions",
    "seed",
    "stream",
    "dedup",
    "retain_topologies",
)


def _dataclass_keys(cls) -> tuple[str, ...]:
    return tuple(f.name for f in fields(cls))


#: section name -> allowed keys.  ``dataset`` excludes ``rules``: the rule
#: set is single-sourced from the ``rules`` section and injected at lowering.
SECTION_KEYS: dict[str, tuple[str, ...]] = {
    "rules": _dataclass_keys(DesignRules),
    "dataset": tuple(k for k in _dataclass_keys(DatasetConfig) if k != "rules"),
    "diffusion": _dataclass_keys(DiffusionConfig),
    "prefilter": _dataclass_keys(PrefilterConfig),
    "model": _MODEL_KEYS,
    "training": _TRAINING_KEYS,
    "engine": _ENGINE_KEYS,
    "sampling": _SAMPLING_KEYS,
    "run": _RUN_KEYS,
}

_TOP_LEVEL_KEYS = ("description", "extends", "preset")

#: Config fields that are tuples of ints; TOML/JSON deliver lists.
_TUPLE_KEYS = ("channel_mult", "attention_resolutions")

#: Engine fields where ``0`` in a scenario file means "auto" (``None`` in the
#: config) — TOML has no null literal.
_AUTO_KEYS = ("workers", "legalize_chunk_size", "stream_chunk_size")


def _numeric(key: str, value: Any) -> "int | float":
    """Strict numeric coercion for scalar ``model`` fields.

    Rejects strings outright — ``int("8")`` would mask a quoting mistake in
    a scenario file as a valid value.
    """
    if isinstance(value, str):
        raise ValueError(f"{key} must be a number, not {value!r}")
    return float(value) if key == "dropout" else int(value)


def _coerce(section: str, key: str, value: Any) -> Any:
    if key in _TUPLE_KEYS and isinstance(value, (list, tuple)):
        return tuple(int(v) for v in value)
    if section == "engine" and key in _AUTO_KEYS and value == 0:
        return None
    if section == "sampling" and key == "steps" and value == 0:
        return None
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario specification (possibly still unresolved).

    Instances are immutable; :meth:`merged_over` and :meth:`with_overrides`
    return new specs.  ``extends`` is a *name* — resolving it against a
    registry is the job of :class:`~repro.scenarios.ScenarioRegistry`.
    """

    name: str
    description: str = ""
    extends: "str | None" = None
    preset: "str | None" = None
    #: section name -> {key: value} overrides, already validated and coerced.
    sections: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction / validation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Validate a raw mapping (e.g. one TOML table) into a spec.

        Raises
        ------
        ScenarioError
            On a non-mapping payload, an unknown section, an unknown key
            inside a section, a non-mapping section value, or an invalid
            ``preset``.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(f"scenario {name!r}: specification must be a mapping")
        unknown = set(data) - set(_TOP_LEVEL_KEYS) - set(SECTION_KEYS)
        if unknown:
            raise ScenarioError(
                f"scenario {name!r}: unknown section(s) {sorted(unknown)}; "
                f"allowed: {sorted(SECTION_KEYS)} plus {list(_TOP_LEVEL_KEYS)}"
            )
        preset = data.get("preset")
        if preset is not None and preset not in PRESETS:
            raise ScenarioError(
                f"scenario {name!r}: preset {preset!r} is not one of {PRESETS}"
            )
        extends = data.get("extends")
        if extends is not None and not isinstance(extends, str):
            raise ScenarioError(f"scenario {name!r}: extends must be a scenario name")
        sections: dict[str, dict[str, Any]] = {}
        for section, allowed in SECTION_KEYS.items():
            payload = data.get(section)
            if payload is None:
                continue
            if not isinstance(payload, Mapping):
                raise ScenarioError(
                    f"scenario {name!r}: section {section!r} must be a mapping"
                )
            bad = set(payload) - set(allowed)
            if bad:
                raise ScenarioError(
                    f"scenario {name!r}: unknown key(s) {sorted(bad)} in section "
                    f"{section!r}; allowed: {sorted(allowed)}"
                )
            sections[section] = {
                key: _coerce(section, key, value) for key, value in payload.items()
            }
        return cls(
            name=name,
            description=str(data.get("description", "")),
            extends=extends,
            preset=preset,
            sections=sections,
        )

    def as_dict(self) -> dict[str, Any]:
        """The inverse of :meth:`from_dict` (lossless round-trip codec)."""
        payload: dict[str, Any] = {}
        if self.description:
            payload["description"] = self.description
        if self.extends is not None:
            payload["extends"] = self.extends
        if self.preset is not None:
            payload["preset"] = self.preset
        for section, values in self.sections.items():
            if values:
                payload[section] = {
                    key: list(value) if isinstance(value, tuple) else value
                    for key, value in values.items()
                }
        return payload

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def merged_over(self, parent: "ScenarioSpec") -> "ScenarioSpec":
        """This spec's values layered over ``parent`` (child wins per key).

        The result keeps this spec's name and drops ``extends`` (the chain is
        consumed by the merge); the parent's remaining ``extends`` link, if
        any, is inherited so a registry can keep walking the chain.
        """
        sections: dict[str, dict[str, Any]] = {
            section: dict(values) for section, values in parent.sections.items()
        }
        for section, values in self.sections.items():
            sections.setdefault(section, {}).update(values)
        return ScenarioSpec(
            name=self.name,
            description=self.description or parent.description,
            extends=parent.extends,
            preset=self.preset if self.preset is not None else parent.preset,
            sections=sections,
        )

    def with_overrides(self, overrides: Mapping[str, Mapping[str, Any]]) -> "ScenarioSpec":
        """A copy with extra section overrides applied (validated like a spec).

        This is how call sites layer run-time knobs (CLI flags, benchmark
        fast-mode scales) on top of a named scenario without mutating it.
        """
        child = ScenarioSpec.from_dict(self.name, dict(overrides))
        return child.merged_over(self)

    # ------------------------------------------------------------------ #
    # lowering
    # ------------------------------------------------------------------ #
    def lower(self) -> "RunPlan":
        """Build the concrete :class:`RunPlan` this scenario describes.

        The preset classmethod (default ``tiny``) constructs the base
        :class:`~repro.pipeline.DiffPatternConfig`; every section then
        overrides its slice of the config.  The ``rules`` section is applied
        *through* the preset constructor so the dataset and the pipeline
        share one :class:`~repro.legalization.DesignRules` instance.

        Raises
        ------
        ScenarioError
            If the spec still carries an unresolved ``extends`` link, or a
            value fails the underlying config dataclass validation.
        """
        from ..pipeline import DiffPatternConfig

        if self.extends is not None:
            raise ScenarioError(
                f"scenario {self.name!r} still extends {self.extends!r}; "
                "resolve it through a ScenarioRegistry before lowering"
            )
        preset = self.preset if self.preset is not None else "tiny"
        try:
            rules = DesignRules(**self.sections.get("rules", {}))
            config = getattr(DiffPatternConfig, preset)(rules=rules)
            dataset_overrides = self.sections.get("dataset", {})
            if dataset_overrides:
                config.dataset = replace(config.dataset, **dataset_overrides)
            diffusion_overrides = self.sections.get("diffusion", {})
            if diffusion_overrides:
                config.diffusion = replace(config.diffusion, **diffusion_overrides)
            prefilter_overrides = self.sections.get("prefilter", {})
            if prefilter_overrides:
                config.prefilter = replace(config.prefilter, **prefilter_overrides)
            # setattr would accept any payload silently; the numeric coercions
            # make a type-invalid value (e.g. model_channels = "big") fail
            # here, pointing at the scenario, not deep inside U-Net setup.
            for key, value in self.sections.get("model", {}).items():
                setattr(config, key, value if key in _TUPLE_KEYS else _numeric(key, value))
            for key, value in self.sections.get("engine", {}).items():
                if key in _ENGINE_STR_KEYS:
                    setattr(config, key, str(value))
                elif key in _ENGINE_BOOL_KEYS:
                    setattr(config, key, bool(value))
                else:
                    setattr(config, key, None if value is None else int(value))
            # Engine fields bypass __post_init__, so re-validate the solve
            # strategy here where the error names the scenario.
            if config.solver_mode not in SOLVER_MODES:
                raise ScenarioError(
                    f"scenario {self.name!r}: solver_mode must be one of "
                    f"{SOLVER_MODES}, got {config.solver_mode!r}"
                )
            sampling = self.sections.get("sampling", {})
            if "steps" in sampling:
                value = sampling["steps"]
                config.sampling_steps = None if value is None else int(value)
            # Like the engine fields this bypasses __post_init__, and the
            # chain length may itself have been overridden above — re-check
            # the range here where the error names the scenario.
            if config.sampling_steps is not None and not (
                1 <= config.sampling_steps <= config.diffusion.num_steps
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: sampling.steps must lie in "
                    f"[1, {config.diffusion.num_steps}] (the trained chain "
                    f"length), got {config.sampling_steps}"
                )
            training = self.sections.get("training", {})
            if "iterations" in training:
                config.train_iterations = int(training["iterations"])
            if "batch_size" in training:
                config.batch_size = int(training["batch_size"])
            run = self.sections.get("run", {})
            if "seed" in run:
                config.seed = int(run["seed"])
            return RunPlan(
                scenario=self.name,
                description=self.description,
                config=config,
                num_training_patterns=int(training.get("num_patterns", 200)),
                num_generated=int(run.get("num_generated", 32)),
                num_solutions=int(run.get("num_solutions", 1)),
                seed=int(run.get("seed", config.seed)),
                stream=bool(run.get("stream", True)),
                dedup=bool(run.get("dedup", False)),
                retain_topologies=bool(run.get("retain_topologies", True)),
            )
        except ScenarioError:
            raise
        except (TypeError, ValueError) as error:
            raise ScenarioError(f"scenario {self.name!r}: {error}") from error


@dataclass
class RunPlan:
    """A lowered scenario: the config plus everything a run needs around it.

    ``config`` drives :class:`~repro.pipeline.DiffPatternPipeline`;
    the remaining fields parameterise
    :meth:`~repro.pipeline.DiffPatternPipeline.run` and the optional
    :class:`~repro.library.PatternLibrary` binding.
    """

    scenario: str
    description: str
    config: Any  # DiffPatternConfig (typed loosely to avoid an import cycle)
    num_training_patterns: int
    num_generated: int
    num_solutions: int
    seed: int
    stream: bool
    dedup: bool
    retain_topologies: bool

    def summary(self) -> str:
        """One-paragraph human description of what this plan will run."""
        cfg = self.config
        lines = [
            f"scenario           {self.scenario}",
            f"  rules            space>={cfg.rules.space_min} width>={cfg.rules.width_min} "
            f"area in [{cfg.rules.area_min}, {cfg.rules.area_max}]",
            f"  dataset          matrix {cfg.dataset.matrix_size}x{cfg.dataset.matrix_size}, "
            f"{cfg.dataset.channels} channels, {self.num_training_patterns} training patterns",
            f"  diffusion        {cfg.diffusion.num_steps} steps, "
            f"{cfg.train_iterations} training iterations",
            f"  generation       {self.num_generated} topologies x "
            f"{self.num_solutions} solution(s), seed {self.seed}, "
            f"{'streamed' if self.stream else 'batch'}",
            f"  engine           sample_batch={cfg.sample_batch_size}, "
            f"workers={cfg.workers}, stream_chunk={cfg.stream_chunk_size}, "
            f"solver={cfg.solver_mode}, "
            f"batch_solve={'on' if cfg.batch_solve else 'off'}, "
            f"dedup={'on' if self.dedup else 'off'}",
            f"  sampling         "
            + (
                f"{cfg.sampling_steps} of {cfg.diffusion.num_steps} steps (respaced)"
                if cfg.sampling_steps is not None
                and cfg.sampling_steps != cfg.diffusion.num_steps
                else f"full chain ({cfg.diffusion.num_steps} steps)"
            ),
        ]
        if self.description:
            lines.insert(1, f"  description      {self.description}")
        return "\n".join(lines)

"""Loading scenario specifications from TOML / JSON files.

A scenario file is a mapping of scenario name to specification table, in the
schema documented by :mod:`repro.scenarios.spec` (see ``docs/scenarios.md``
for a walkthrough).  TOML::

    [nightly-dense]
    extends = "dense"
    description = "nightly library build"

    [nightly-dense.run]
    num_generated = 4096

    [nightly-dense.engine]
    workers = 0          # 0 = auto-size the pool to the host CPUs

or the equivalent JSON object.  The format is chosen by file suffix
(``.toml`` vs ``.json``).  File-defined scenarios may ``extends`` built-ins
and each other; name collisions with already-registered scenarios are an
error unless ``replace=True``.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path
from typing import Mapping

from .registry import ScenarioRegistry
from .spec import ScenarioError, ScenarioSpec

__all__ = ["load_scenario_dicts", "load_scenarios", "dump_scenarios"]


def load_scenario_dicts(path: "str | Path") -> dict[str, Mapping]:
    """Parse a scenario file into raw ``{name: spec_dict}`` mappings.

    Raises
    ------
    ScenarioError
        On an unreadable file, an unsupported suffix, a parse error, or a
        top-level payload that is not a mapping of tables.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise ScenarioError(f"cannot read scenario file {path}: {error}") from error
    try:
        if path.suffix == ".toml":
            payload = tomllib.loads(raw.decode("utf-8"))
        elif path.suffix == ".json":
            payload = json.loads(raw.decode("utf-8"))
        else:
            raise ScenarioError(
                f"scenario file {path} must end in .toml or .json, not {path.suffix!r}"
            )
    except (tomllib.TOMLDecodeError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ScenarioError(f"cannot parse scenario file {path}: {error}") from error
    if not isinstance(payload, dict) or not all(
        isinstance(value, dict) for value in payload.values()
    ):
        raise ScenarioError(
            f"scenario file {path} must map scenario names to tables/objects"
        )
    return payload


def load_scenarios(
    path: "str | Path",
    registry: "ScenarioRegistry | None" = None,
    replace: bool = False,
) -> list[ScenarioSpec]:
    """Validate every scenario in ``path`` and register it.

    Parameters
    ----------
    path:
        A ``.toml`` or ``.json`` scenario file.
    registry:
        Registry to add to (a fresh empty one by default).  Pass the builtin
        registry to let file scenarios ``extends`` the shipped ones.
    replace:
        Allow file scenarios to shadow already-registered names.

    Returns
    -------
    list[ScenarioSpec]
        The newly registered specs, in file order.

    Raises
    ------
    ScenarioError
        On any parse or validation failure; nothing is registered unless the
        whole file validates.
    """
    registry = registry if registry is not None else ScenarioRegistry()
    specs = [
        ScenarioSpec.from_dict(name, data)
        for name, data in load_scenario_dicts(path).items()
    ]
    for spec in specs:  # validate-all-then-register: no partial loads
        if spec.name in registry and not replace:
            raise ScenarioError(
                f"scenario file {path}: {spec.name!r} is already registered; "
                "rename it or pass replace=True"
            )
    for spec in specs:
        registry.register(spec, replace=replace)
    return specs


def dump_scenarios(specs: "list[ScenarioSpec]", path: "str | Path") -> Path:
    """Write specs to a ``.json`` scenario file (the round-trip inverse).

    JSON only — TOML writing is not in the stdlib and the JSON form loads
    identically.

    Raises
    ------
    ScenarioError
        If ``path`` does not end in ``.json``.
    """
    path = Path(path)
    if path.suffix != ".json":
        raise ScenarioError(f"dump_scenarios writes JSON; got {path.suffix!r}")
    payload = {spec.name: spec.as_dict() for spec in specs}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

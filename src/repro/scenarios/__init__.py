"""Declarative workload scenarios: named specs that lower to pipeline runs.

``repro.scenarios`` is the registry layer over the generation machinery:
a :class:`ScenarioSpec` names one complete workload regime (design rules,
grid/topology-count regime, sampler and worker knobs, stream/library
settings), validates its schema, composes via ``extends`` inheritance and
per-section overrides, loads from TOML/JSON files, and lowers into a
:class:`RunPlan` (a built :class:`~repro.pipeline.DiffPatternConfig` plus
run-shaping values) executed through
:class:`~repro.pipeline.DiffPatternPipeline` /
:class:`~repro.pipeline.GenerationGraph` and persisted to a
:class:`~repro.library.PatternLibrary`.

``python -m repro`` (see :mod:`repro.cli`) is the command-line front end.
"""

from .io import dump_scenarios, load_scenario_dicts, load_scenarios
from .registry import BUILTIN_SCENARIOS, ScenarioRegistry, builtin_registry
from .spec import SECTION_KEYS, RunPlan, ScenarioError, ScenarioSpec

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "RunPlan",
    "SECTION_KEYS",
    "ScenarioRegistry",
    "builtin_registry",
    "BUILTIN_SCENARIOS",
    "load_scenario_dicts",
    "load_scenarios",
    "dump_scenarios",
]

"""Repo-wide fault-injection framework (chaos testing for the shipped code).

Grown out of :mod:`repro.library`'s durability harness (PR 9), this module
generalises the kill-point approach to every failure-sensitive subsystem:
any state-changing or failure-prone step — a durable filesystem write, a
generation-stream advance, a serve-worker IPC hop — calls
:func:`fault_point` with a stable label *immediately before* executing.  In
production the call is a no-op costing one attribute load; under test a hook
is installed that can crash, delay, or error at any point, simulating a
process kill, a hung worker, or a failing backing store between any two
real operations.

The pattern follows the test-VFS approach of production storage engines and
the torture-test methodology of crash-consistency research: the hooks live
in the shipped code, so the tested ordering *is* the shipped ordering, not a
test-only re-implementation of it.

Three layers:

* **Points** — call sites marked with :func:`fault_point`.  Modules declare
  their labels up front with :func:`declare_fault_points`, so suites can
  enumerate every registered point of a subsystem
  (:func:`registered_fault_points`) and prove each one is both *reachable*
  (hit during a clean run) and *survivable* (the system recovers when it
  fires).
* **Faults** — a :class:`Fault` binds one label to a mode:

  - ``kill``  — raise :class:`InjectedCrash`; simulates a process killed
    mid-operation (in a worker child the exception escapes the loop and the
    process dies; in-process it unwinds to the caller's recovery path);
  - ``exit``  — ``os._exit`` with no unwinding at all (child processes
    only: the hardest possible kill);
  - ``error`` — raise :class:`InjectedError`; simulates a failing
    dependency (e.g. the library backing store) that the caller should
    degrade around rather than die from;
  - ``delay`` — sleep ``seconds``; simulates a slow or hung worker (drive
    it past a watchdog timeout to exercise hang detection).

* **Plans** — a :class:`FaultPlan` maps labels to faults and is installed
  with :func:`install_fault_hook` / the :func:`inject_faults` context
  manager, or from the environment (``REPRO_FAULTS``) for child processes
  that re-execute from scratch.  A fault triggers on its ``hits``-th
  traversal; an optional ``marker`` file makes it one-shot *across
  processes* — a restarted worker inherits the plan but finds the marker
  and does not re-trigger, which is what lets a chaos test assert full
  recovery after exactly one injected failure.

``REPRO_FAULTS`` syntax (``;``-separated)::

    REPRO_FAULTS="worker:advance=kill@/tmp/m1;append:ledger=delay:0.5"

i.e. ``label=mode[:seconds][@marker-path]``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "InjectedError",
    "declare_fault_points",
    "fault_point",
    "inject_faults",
    "install_fault_hook",
    "plan_from_env",
    "record_fault_points",
    "registered_fault_points",
]


class InjectedCrash(RuntimeError):
    """Raised by a ``kill`` fault to simulate a process death at one point."""

    def __init__(self, label: str, index: int) -> None:
        super().__init__(f"injected crash at fault point #{index} ({label})")
        self.label = label
        self.index = index


class InjectedError(RuntimeError):
    """Raised by an ``error`` fault: the operation fails, the process lives."""

    def __init__(self, label: str) -> None:
        super().__init__(f"injected error at fault point ({label})")
        self.label = label


# --------------------------------------------------------------------------- #
# point registry
# --------------------------------------------------------------------------- #
_registry_lock = threading.Lock()
_registered: "set[str]" = set()


def declare_fault_points(*labels: str) -> None:
    """Register ``labels`` as known fault points of the calling subsystem.

    Declaration is what makes a point *enumerable*: chaos suites iterate
    :func:`registered_fault_points` to kill at every point of a subsystem
    without hand-maintaining a parallel list in the tests.  Idempotent.
    """
    with _registry_lock:
        _registered.update(labels)


def registered_fault_points(prefixes: "str | tuple[str, ...]" = "") -> "list[str]":
    """Sorted registered labels, optionally restricted to ``prefixes``."""
    if isinstance(prefixes, str):
        prefixes = (prefixes,)
    with _registry_lock:
        return sorted(
            label for label in _registered if any(label.startswith(p) for p in prefixes)
        )


# --------------------------------------------------------------------------- #
# faults and plans
# --------------------------------------------------------------------------- #
@dataclass
class Fault:
    """One injected behaviour bound to one fault-point label.

    Parameters
    ----------
    label:
        The fault point this fault arms.
    mode:
        ``"kill"`` | ``"exit"`` | ``"error"`` | ``"delay"`` (see module
        docstring).
    seconds:
        Sleep duration for ``delay`` mode.
    hits:
        Trigger on the n-th traversal of the point (1 = first).
    marker:
        Optional path used as a cross-process one-shot latch: the fault
        triggers only if it can *create* the file (``O_EXCL``), so exactly
        one trigger happens across any number of (restarted) processes.
    exit_code:
        Process exit status for ``exit`` mode.
    """

    label: str
    mode: str = "kill"
    seconds: float = 0.0
    hits: int = 1
    marker: "str | os.PathLike | None" = None
    exit_code: int = 70

    def __post_init__(self) -> None:
        if self.mode not in ("kill", "exit", "error", "delay"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.hits < 1:
            raise ValueError("hits must be >= 1")

    def _claim_marker(self) -> bool:
        """Atomically create the marker; False when another trigger beat us."""
        if self.marker is None:
            return True
        try:
            fd = os.open(os.fspath(self.marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def trigger(self, count: int, index: int) -> None:
        """Fire if this traversal (``count``-th of the label) arms the fault."""
        if count != self.hits:
            return
        if not self._claim_marker():
            return
        if self.mode == "delay":
            time.sleep(self.seconds)
        elif self.mode == "error":
            raise InjectedError(self.label)
        elif self.mode == "exit":
            os._exit(self.exit_code)
        else:
            raise InjectedCrash(self.label, index)


class FaultPlan:
    """A set of :class:`Fault`\\ s, installable as the process fault hook.

    Counts traversals per label (thread-safe); callable with a label so it
    plugs straight into :func:`install_fault_hook`.
    """

    def __init__(self, *faults: Fault) -> None:
        self.faults: dict[str, Fault] = {}
        for fault in faults:
            self.faults[fault.label] = fault
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._total = 0

    def __call__(self, label: str) -> None:
        with self._lock:
            self._counts[label] = self._counts.get(label, 0) + 1
            count = self._counts[label]
            self._total += 1
            index = self._total
        fault = self.faults.get(label)
        if fault is not None:
            fault.trigger(count, index)

    def counts(self) -> "dict[str, int]":
        """Traversal count per label seen so far (a copy)."""
        with self._lock:
            return dict(self._counts)


def plan_from_env(value: "str | None" = None) -> "FaultPlan | None":
    """Parse a ``REPRO_FAULTS``-style string into a :class:`FaultPlan`.

    With ``value=None`` the ``REPRO_FAULTS`` environment variable is read;
    returns ``None`` when it is unset/empty.  Raises :class:`ValueError` on
    a malformed entry (fail loudly: a typo'd chaos run must not silently
    test nothing).
    """
    if value is None:
        value = os.environ.get("REPRO_FAULTS", "")
    value = value.strip()
    if not value:
        return None
    faults = []
    for entry in value.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        label, sep, spec = entry.partition("=")
        if not sep or not label:
            raise ValueError(f"malformed REPRO_FAULTS entry {entry!r}")
        marker: "str | None" = None
        if "@" in spec:
            spec, marker = spec.split("@", 1)
        mode, _, arg = spec.partition(":")
        seconds = float(arg) if arg else 0.0
        faults.append(Fault(label=label, mode=mode or "kill", seconds=seconds, marker=marker))
    return FaultPlan(*faults)


# --------------------------------------------------------------------------- #
# the hook
# --------------------------------------------------------------------------- #
#: The installed hook, or ``None`` (production).  A hook is a callable
#: ``hook(label: str) -> None`` that may raise / sleep / exit.
_hook = None


def fault_point(label: str) -> None:
    """Mark one failure-sensitive step; acts only under an installed hook."""
    if _hook is not None:
        _hook(label)


def install_fault_hook(hook) -> None:
    """Install ``hook`` (or ``None`` to clear).  Test-only."""
    global _hook
    _hook = hook


class inject_faults:
    """Context manager installing a :class:`FaultPlan` for its body.

    Accepts either a ready plan or loose :class:`Fault`\\ s::

        with inject_faults(Fault("serve:persist", "kill")):
            ...

    The previous hook is restored on exit, and the installed plan is
    available as the ``as`` target for count assertions.
    """

    def __init__(self, *faults: "Fault | FaultPlan") -> None:
        if len(faults) == 1 and isinstance(faults[0], FaultPlan):
            self.plan = faults[0]
        else:
            self.plan = FaultPlan(*faults)  # type: ignore[arg-type]
        self._previous = None

    def __enter__(self) -> FaultPlan:
        global _hook
        self._previous = _hook
        _hook = self.plan
        return self.plan

    def __exit__(self, *exc) -> None:
        global _hook
        _hook = self._previous


class record_fault_points:
    """Context manager collecting the labels an operation passes through.

    Used by the fault suites to enumerate kill points before replaying the
    same operation once per point with a crashing hook::

        with record_fault_points() as points:
            library.append_chunk(record, patterns)
        assert "manifest:replace" in points
    """

    def __init__(self) -> None:
        self.labels: list[str] = []

    def __enter__(self) -> "list[str]":
        install_fault_hook(self.labels.append)
        return self.labels

    def __exit__(self, *exc) -> None:
        install_fault_hook(None)


# A process started with REPRO_FAULTS set arms its plan at import time —
# this is how spawned worker children (which re-import from scratch) receive
# the faults a chaos harness aimed at them.
_env_plan = plan_from_env()
if _env_plan is not None:
    install_fault_hook(_env_plan)

"""Design-rule checking (the library's KLayout substitute)."""

from .checker import DesignRuleChecker, DRCReport, Violation

__all__ = ["DesignRuleChecker", "DRCReport", "Violation"]

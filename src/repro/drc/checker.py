"""Design-rule checker for rectilinear layout patterns.

The paper validates legality with KLayout; this module provides an equivalent
checker for the three rules of Fig. 3 (space, width, area) specialised to
axis-aligned rectilinear layouts.  All checks are evaluated on the canonical
squish grid of the layout, where they are exact:

* **Width**: every maximal run of shape cells along a row (columns along a
  column) has physical length >= ``width_min``.
* **Space**: every maximal run of empty cells *between two shapes* along a
  row / column has physical length >= ``space_min``; additionally,
  corner-touching shapes (bow-ties) are reported because their diagonal
  spacing is zero.
* **Area**: every 4-connected polygon's area lies in ``[area_min, area_max]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import (
    Layout,
    component_areas,
    has_bowtie,
    runs_of_value,
    validate_grid,
)
from ..legalization.rules import DesignRules
from ..squish import SquishPattern, canonicalize


@dataclass(frozen=True)
class Violation:
    """A single design-rule violation."""

    rule: str          # "width" | "space" | "area" | "bowtie"
    axis: str          # "x", "y" or "-" when not directional
    location: tuple[int, int]
    measured: float
    required: float

    def __str__(self) -> str:
        return (
            f"{self.rule} violation at {self.location} along {self.axis}: "
            f"measured {self.measured:.1f}, required {self.required:.1f}"
        )


@dataclass
class DRCReport:
    """Result of checking one pattern."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def count(self, rule: "str | None" = None) -> int:
        if rule is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.rule == rule)


class DesignRuleChecker:
    """Checks layouts / squish patterns against a :class:`DesignRules` set."""

    def __init__(self, rules: DesignRules) -> None:
        self.rules = rules

    # ------------------------------------------------------------------ #
    def check_pattern(self, pattern: SquishPattern) -> DRCReport:
        """Check a squish pattern (canonicalised first so runs are maximal)."""
        canonical = canonicalize(pattern)
        return self._check_grid(canonical.topology, canonical.delta_x, canonical.delta_y)

    def check_layout(self, layout: Layout) -> DRCReport:
        """Check a layout clip by re-squishing it onto its scan-line grid."""
        grid, dx, dy = layout.occupancy_grid()
        return self._check_grid(grid, dx, dy)

    def is_legal(self, pattern: "SquishPattern | Layout") -> bool:
        """Convenience wrapper returning only the verdict."""
        if isinstance(pattern, SquishPattern):
            return self.check_pattern(pattern).clean
        return self.check_layout(pattern).clean

    # ------------------------------------------------------------------ #
    # batched checking
    # ------------------------------------------------------------------ #
    def check_batch(
        self, patterns: "list[SquishPattern] | list[Layout]"
    ) -> list[DRCReport]:
        """Check a whole pattern library; one report per pattern, in order.

        Pattern libraries are checked far more often than single patterns
        (every Table I row, every legalisation run), so this is the
        canonical entry point for library-level checking — callers get the
        verdicts in one call (see :meth:`legality_mask` /
        :meth:`legal_subset`) instead of hand-rolled loops.
        """
        reports: list[DRCReport] = []
        for pattern in patterns:
            if isinstance(pattern, SquishPattern):
                reports.append(self.check_pattern(pattern))
            else:
                reports.append(self.check_layout(pattern))
        return reports

    def legality_mask(
        self, patterns: "list[SquishPattern] | list[Layout]"
    ) -> np.ndarray:
        """Boolean verdict per pattern (``True`` = DRC-clean), batch order."""
        return np.fromiter(
            (report.clean for report in self.check_batch(patterns)),
            dtype=bool,
            count=len(patterns),
        )

    def legal_subset(
        self, patterns: "list[SquishPattern] | list[Layout]"
    ) -> "list[SquishPattern] | list[Layout]":
        """The DRC-clean patterns of a library, preserving order."""
        mask = self.legality_mask(patterns)
        return [pattern for pattern, ok in zip(patterns, mask) if ok]

    def legality_rate(self, patterns: "list[SquishPattern] | list[Layout]") -> float:
        """Fraction of DRC-clean patterns in a library."""
        if not patterns:
            return 0.0
        mask = self.legality_mask(patterns)
        return float(mask.sum()) / len(patterns)

    # ------------------------------------------------------------------ #
    def _check_grid(
        self, grid: np.ndarray, delta_x: np.ndarray, delta_y: np.ndarray
    ) -> DRCReport:
        grid = validate_grid(grid)
        dx = np.asarray(delta_x, dtype=np.int64)
        dy = np.asarray(delta_y, dtype=np.int64)
        report = DRCReport()
        rules = self.rules

        if has_bowtie(grid):
            report.violations.append(
                Violation("bowtie", "-", (0, 0), 0.0, float(rules.space_min))
            )

        # Row direction: width / space measured along x.
        for r in range(grid.shape[0]):
            self._check_line(grid[r], dx, "x", r, report)
        # Column direction: width / space measured along y.
        for c in range(grid.shape[1]):
            self._check_line(grid[:, c], dy, "y", c, report)

        # Polygon areas.
        for index, area in enumerate(component_areas(grid, dx, dy)):
            if area < rules.area_min:
                report.violations.append(
                    Violation("area", "-", (index, index), float(area), float(rules.area_min))
                )
            elif area > rules.area_max:
                report.violations.append(
                    Violation("area", "-", (index, index), float(area), float(rules.area_max))
                )
        return report

    def _check_line(
        self,
        line: np.ndarray,
        deltas: np.ndarray,
        axis: str,
        index: int,
        report: DRCReport,
    ) -> None:
        rules = self.rules
        ones = np.nonzero(line == 1)[0]
        for start, end in runs_of_value(line, 1):
            length = int(deltas[start : end + 1].sum())
            if length < rules.width_min:
                location = (index, start) if axis == "x" else (start, index)
                report.violations.append(
                    Violation("width", axis, location, float(length), float(rules.width_min))
                )
        if ones.size >= 2:
            first, last = int(ones[0]), int(ones[-1])
            for start, end in runs_of_value(line, 0):
                if start > first and end < last:
                    length = int(deltas[start : end + 1].sum())
                    if length < rules.space_min:
                        location = (index, start) if axis == "x" else (start, index)
                        report.violations.append(
                            Violation(
                                "space", axis, location, float(length), float(rules.space_min)
                            )
                        )

"""Design-rule checker for rectilinear layout patterns.

The paper validates legality with KLayout; this module provides an equivalent
checker for the three rules of Fig. 3 (space, width, area) specialised to
axis-aligned rectilinear layouts.  All checks are evaluated on the canonical
squish grid of the layout, where they are exact:

* **Width**: every maximal run of shape cells along a row (columns along a
  column) has physical length >= ``width_min``.
* **Space**: every maximal run of empty cells *between two shapes* along a
  row / column has physical length >= ``space_min``; additionally,
  corner-touching shapes (bow-ties) are reported because their diagonal
  spacing is zero.
* **Area**: every 4-connected polygon's area lies in ``[area_min, area_max]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import (
    Layout,
    connected_components,
    has_bowtie,
    interior_runs_2d,
    runs_2d,
    validate_grid,
)
from ..legalization.rules import DesignRules
from ..squish import SquishPattern, canonicalize


@dataclass(frozen=True)
class Violation:
    """A single design-rule violation."""

    rule: str          # "width" | "space" | "area" | "bowtie"
    axis: str          # "x", "y" or "-" when not directional
    location: tuple[int, int]
    measured: float
    required: float

    def __str__(self) -> str:
        return (
            f"{self.rule} violation at {self.location} along {self.axis}: "
            f"measured {self.measured:.1f}, required {self.required:.1f}"
        )


@dataclass
class DRCReport:
    """Result of checking one pattern."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def count(self, rule: "str | None" = None) -> int:
        if rule is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.rule == rule)


class DesignRuleChecker:
    """Checks layouts / squish patterns against a :class:`DesignRules` set."""

    def __init__(self, rules: DesignRules) -> None:
        self.rules = rules

    # ------------------------------------------------------------------ #
    def check_pattern(self, pattern: SquishPattern) -> DRCReport:
        """Check a squish pattern (canonicalised first so runs are maximal)."""
        canonical = canonicalize(pattern)
        return self._check_grid(canonical.topology, canonical.delta_x, canonical.delta_y)

    def check_layout(self, layout: Layout) -> DRCReport:
        """Check a layout clip by re-squishing it onto its scan-line grid."""
        grid, dx, dy = layout.occupancy_grid()
        return self._check_grid(grid, dx, dy)

    def is_legal(self, pattern: "SquishPattern | Layout") -> bool:
        """Convenience wrapper returning only the verdict."""
        if isinstance(pattern, SquishPattern):
            return self.check_pattern(pattern).clean
        return self.check_layout(pattern).clean

    # ------------------------------------------------------------------ #
    # batched checking
    # ------------------------------------------------------------------ #
    def check_batch(
        self, patterns: "list[SquishPattern] | list[Layout]"
    ) -> list[DRCReport]:
        """Check a whole pattern library; one report per pattern, in order.

        Pattern libraries are checked far more often than single patterns
        (every Table I row, every legalisation run), so this is the
        canonical entry point for library-level checking — callers get the
        verdicts in one call (see :meth:`legality_mask` /
        :meth:`legal_subset`) instead of hand-rolled loops.
        """
        reports: list[DRCReport] = []
        for pattern in patterns:
            if isinstance(pattern, SquishPattern):
                reports.append(self.check_pattern(pattern))
            else:
                reports.append(self.check_layout(pattern))
        return reports

    def legality_mask(
        self, patterns: "list[SquishPattern] | list[Layout]"
    ) -> np.ndarray:
        """Boolean verdict per pattern (``True`` = DRC-clean), batch order."""
        return np.fromiter(
            (report.clean for report in self.check_batch(patterns)),
            dtype=bool,
            count=len(patterns),
        )

    def legal_subset(
        self, patterns: "list[SquishPattern] | list[Layout]"
    ) -> "list[SquishPattern] | list[Layout]":
        """The DRC-clean patterns of a library, preserving order."""
        mask = self.legality_mask(patterns)
        return [pattern for pattern, ok in zip(patterns, mask) if ok]

    def legality_rate(self, patterns: "list[SquishPattern] | list[Layout]") -> float:
        """Fraction of DRC-clean patterns in a library."""
        if not patterns:
            return 0.0
        mask = self.legality_mask(patterns)
        return float(mask.sum()) / len(patterns)

    # ------------------------------------------------------------------ #
    def _check_grid(
        self, grid: np.ndarray, delta_x: np.ndarray, delta_y: np.ndarray
    ) -> DRCReport:
        grid = validate_grid(grid)
        dx = np.asarray(delta_x, dtype=np.int64)
        dy = np.asarray(delta_y, dtype=np.int64)
        report = DRCReport()
        rules = self.rules

        if has_bowtie(grid):
            report.violations.append(
                Violation("bowtie", "-", (0, 0), 0.0, float(rules.space_min))
            )

        # Width / space along both directions, all lines at once: runs come
        # from the shared run-length kernels and their physical lengths from
        # one prefix sum per axis (exact in int64).
        self._check_direction(grid, dx, "x", report)
        self._check_direction(grid.T, dy, "y", report)

        # Polygon areas.  The cell area grid is exact in int64; per-polygon
        # sums come from one bincount over the labels.
        labels, count = connected_components(grid)
        if count:
            cell_areas = np.outer(dy, dx)
            areas = np.bincount(
                labels.ravel(), weights=cell_areas.ravel(), minlength=count + 1
            )[1:]
            # Representative cell per polygon: its first cell in row-major
            # scan order (labels appear in scan order, so the first flat
            # occurrence of each label is well defined).
            _, first_flat = np.unique(labels.ravel(), return_index=True)
            first_flat = first_flat[-count:]  # drop the background label 0
            cols = grid.shape[1]
            for index in range(count):
                area = float(areas[index])
                location = (int(first_flat[index] // cols), int(first_flat[index] % cols))
                if area < rules.area_min:
                    report.violations.append(
                        Violation("area", "-", location, area, float(rules.area_min))
                    )
                elif area > rules.area_max:
                    report.violations.append(
                        Violation("area", "-", location, area, float(rules.area_max))
                    )
        return report

    def _check_direction(
        self,
        grid: np.ndarray,
        deltas: np.ndarray,
        axis: str,
        report: DRCReport,
    ) -> None:
        """Check every width and interior-space run along the rows of ``grid``.

        ``axis`` is ``"x"`` when the rows of ``grid`` are physical rows
        (lengths measured with ``delta_x``) and ``"y"`` when ``grid`` is the
        transposed view.  Violations are emitted in the order the per-line
        scan produced them: by line, widths before spaces, then by start.
        """
        rules = self.rules
        prefix = np.concatenate(([0], np.cumsum(deltas)))

        w_line, w_start, w_end = runs_2d(grid, 1)
        w_len = prefix[w_end + 1] - prefix[w_start]
        w_bad = w_len < rules.width_min

        s_line, s_start, s_end = interior_runs_2d(grid, 0)
        s_len = prefix[s_end + 1] - prefix[s_start]
        s_bad = s_len < rules.space_min

        lines = np.concatenate([w_line[w_bad], s_line[s_bad]])
        starts = np.concatenate([w_start[w_bad], s_start[s_bad]])
        lengths = np.concatenate([w_len[w_bad], s_len[s_bad]])
        kinds = np.concatenate(
            [np.zeros(int(w_bad.sum()), dtype=np.int8), np.ones(int(s_bad.sum()), dtype=np.int8)]
        )
        for i in np.lexsort((starts, kinds, lines)):
            line, start = int(lines[i]), int(starts[i])
            rule = "width" if kinds[i] == 0 else "space"
            required = rules.width_min if kinds[i] == 0 else rules.space_min
            location = (line, start) if axis == "x" else (start, line)
            report.violations.append(
                Violation(rule, axis, location, float(lengths[i]), float(required))
            )

"""Small shared utilities (RNG handling, timing, logging helpers)."""

from .rng import as_rng
from .timing import Timer

__all__ = ["as_rng", "Timer"]

"""Small shared utilities (RNG handling, timing, logging helpers)."""

from .rng import as_rng, child_rng, resolve_seed
from .timing import Timer

__all__ = ["as_rng", "child_rng", "resolve_seed", "Timer"]

"""Random-number-generator handling.

All stochastic components of the library (data synthesis, diffusion sampling,
weight initialisation, solver initialisation) accept either a seed or a
``numpy.random.Generator``; this helper normalises both to a Generator so that
experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` produces a fresh non-deterministic generator, an int seeds a new
    generator, and an existing Generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {type(rng).__name__} as a random generator")

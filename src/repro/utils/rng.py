"""Random-number-generator handling.

All stochastic components of the library (data synthesis, diffusion sampling,
weight initialisation, solver initialisation) accept either a seed or a
``numpy.random.Generator``; this helper normalises both to a Generator so that
experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` produces a fresh non-deterministic generator, an int seeds a new
    generator, and an existing Generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {type(rng).__name__} as a random generator")


def resolve_seed(rng: "int | np.random.Generator | None") -> int:
    """Collapse the library's ``rng``-like arguments into one integer seed.

    Integers pass through, ``None`` draws a fresh random seed, and an
    existing Generator contributes one draw from its stream (so pipelines
    that thread a shared generator stay reproducible end to end).
    """
    if rng is None:
        return int(np.random.default_rng().integers(0, 2**63))
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63))
    raise TypeError(f"cannot interpret {type(rng).__name__} as a seed")


def child_rng(base_seed: int, index: int) -> np.random.Generator:
    """The independent random stream owned by element ``index`` of a batch.

    Derived through :class:`numpy.random.SeedSequence` spawning, so the
    stream depends only on ``(base_seed, index)`` — never on how the batch is
    chunked, which worker processes it, or which other elements surround it.
    This is the seeding contract shared by the sampling and legalization
    engines.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(base_seed), spawn_key=(int(index),))
    )

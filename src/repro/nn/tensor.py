"""A small tape-based automatic-differentiation engine on NumPy arrays.

The paper trains its discrete diffusion model with PyTorch.  PyTorch is not
available in this environment, so the library ships its own reverse-mode
autodiff substrate: a :class:`Tensor` wrapping a ``float32`` NumPy array plus
the operators needed by the U-Net backbone (convolutions, normalisation,
attention, categorical losses).  The API deliberately mirrors a small subset
of PyTorch so the model code reads naturally.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_DTYPE = np.float32

# Global autograd switch.  A single mutable cell (instead of a bare module
# global) lets the context manager below restore the previous state even when
# `no_grad` blocks are nested or raise.
_GRAD_ENABLED: list[bool] = [True]


def is_grad_enabled() -> bool:
    """Whether new operations record themselves on the autodiff tape."""
    return _GRAD_ENABLED[0]


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable tape construction (mirrors PyTorch)."""
    _GRAD_ENABLED[0] = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape construction for inference hot paths.

    Inside the block every operation returns a constant tensor: no parents are
    retained, no backward closures are allocated, and no gradient buffers can
    be populated.  Nesting is supported and the previous state is restored on
    exit, including on exceptions.
    """
    previous = _GRAD_ENABLED[0]
    _GRAD_ENABLED[0] = False
    try:
        yield
    finally:
        _GRAD_ENABLED[0] = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything convertible to a ``float32`` NumPy array.
    requires_grad:
        When True the tensor accumulates gradients during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")
    __array_priority__ = 1000  # ensure Tensor.__r*__ wins over np.ndarray ops

    def __init__(
        self,
        data: "np.ndarray | float | int | list",
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward_fn: "Callable[[np.ndarray], None] | None" = None,
    ) -> None:
        self.data = np.asarray(data, dtype=_DTYPE)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward_fn = _backward_fn

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: "Tensor | np.ndarray | float | int") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED[0] and any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward_fn=backward_fn if requires else None,
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=_DTYPE), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward_fn)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward_fn)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return self._ensure(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward_fn)

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return self._ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward_fn)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward_fn)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward_fn)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward_fn)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward_fn)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward_fn)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(_DTYPE)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward_fn)

    def silu(self) -> "Tensor":
        """x * sigmoid(x), the activation used by DDPM U-Nets."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * (sig + self.data * sig * (1.0 - sig)))

        return self._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis: "int | tuple[int, ...] | None" = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            g = np.asarray(grad, dtype=_DTYPE)
            if axis is None:
                expanded = np.broadcast_to(g, self.data.shape)
            else:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                if not keepdims:
                    for a in sorted(axes):
                        g = np.expand_dims(g, a)
                expanded = np.broadcast_to(g, self.data.shape)
            self._accumulate(expanded)

        return self._make(out_data, (self,), backward_fn)

    def mean(self, axis: "int | tuple[int, ...] | None" = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward_fn)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward_fn)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward_fn(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward_fn)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(_DTYPE)
        out_data = np.clip(self.data, low, high)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward_fn)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded_max = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == expanded_max).astype(_DTYPE)
        mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)

        def backward_fn(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        return self._make(out_data, (self,), backward_fn)


# ---------------------------------------------------------------------- #
# constructors
# ---------------------------------------------------------------------- #
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a tensor (mirrors ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(tuple(shape), dtype=_DTYPE), requires_grad=requires_grad)


def ones(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(tuple(shape), dtype=_DTYPE), requires_grad=requires_grad)


def randn(
    shape: Iterable[int],
    rng: "np.random.Generator | None" = None,
    scale: float = 1.0,
    requires_grad: bool = False,
) -> Tensor:
    gen = rng if rng is not None else np.random.default_rng()
    return Tensor(
        gen.standard_normal(tuple(shape)).astype(_DTYPE) * scale,
        requires_grad=requires_grad,
    )


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, end)
            t._accumulate(grad[tuple(index)])

    requires = _GRAD_ENABLED[0] and any(t.requires_grad for t in tensors)
    return Tensor(
        out_data,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward_fn=backward_fn if requires else None,
    )


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, slices):
            t._accumulate(np.squeeze(piece, axis=axis))

    requires = _GRAD_ENABLED[0] and any(t.requires_grad for t in tensors)
    return Tensor(
        out_data,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward_fn=backward_fn if requires else None,
    )

"""Module system and standard layers.

A thin PyTorch-like module layer on top of the autograd engine: parameter
registration, recursive traversal, train/eval mode, state-dict extraction, and
the concrete layers used by the U-Net and the baselines.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from . import functional as F
from .tensor import Tensor, _DTYPE, no_grad


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # -- registration ------------------------------------------------- #
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ----------------------------------------------------- #
    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter of this module and its children."""
        for param in self._parameters.values():
            yield param
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- modes ---------------------------------------------------------- #
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=_DTYPE)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.shape}, got {value.shape}"
                )
            param.data[...] = value

    # -- call ------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- inference -------------------------------------------------------- #
    def infer(self, *args, **kwargs):
        """Gradient-free array-in / array-out forward pass.

        The generic fallback wraps array arguments in constant tensors and
        runs :meth:`forward` under :func:`~repro.nn.tensor.no_grad`, so every
        module has a tape-free path.  Hot-path layers override this with a
        pure-NumPy kernel that skips the Tensor machinery entirely.
        """
        with no_grad():
            wrapped = [Tensor(a) if isinstance(a, np.ndarray) else a for a in args]
            out = self.forward(*wrapped, **kwargs)
        return out.data if isinstance(out, Tensor) else out


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for idx, layer in enumerate(layers):
            setattr(self, f"layer_{idx}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.infer(x)
        return x


class Identity(Module):
    """No-op layer (used for optional skip projections)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        return x


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        bound = 1.0 / math.sqrt(in_features)
        self.weight = Parameter(
            gen.uniform(-bound, bound, size=(out_features, in_features)).astype(_DTYPE)
        )
        self.bias = (
            Parameter(gen.uniform(-bound, bound, size=(out_features,)).astype(_DTYPE))
            if bias
            else None
        )
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.linear_array(x, self.weight.data, None if self.bias is None else self.bias.data)


class Conv2d(Module):
    """2-D convolution with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        bound = 1.0 / math.sqrt(fan_in)
        self.weight = Parameter(
            gen.uniform(
                -bound, bound, size=(out_channels, in_channels, kernel_size, kernel_size)
            ).astype(_DTYPE)
        )
        self.bias = (
            Parameter(gen.uniform(-bound, bound, size=(out_channels,)).astype(_DTYPE))
            if bias
            else None
        )
        self.stride = stride
        self.padding = padding
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.conv2d_array(
            x,
            self.weight.data,
            None if self.bias is None else self.bias.data,
            stride=self.stride,
            padding=self.padding,
        )


class GroupNorm(Module):
    """Group normalisation with learnable scale/shift."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"num_channels ({num_channels}) must be divisible by num_groups ({num_groups})"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels, dtype=_DTYPE))
        self.bias = Parameter(np.zeros(num_channels, dtype=_DTYPE))

    def forward(self, x: Tensor) -> Tensor:
        return F.group_norm(x, self.num_groups, self.weight, self.bias, eps=self.eps)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.group_norm_array(x, self.num_groups, self.weight.data, self.bias.data, eps=self.eps)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=_DTYPE))
        self.bias = Parameter(np.zeros(dim, dtype=_DTYPE))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.layer_norm_array(x, self.weight.data, self.bias.data, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for reproducibility."""

    def __init__(self, rate: float, rng: "np.random.Generator | None" = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Inference never drops units: identity regardless of training mode.
        return x


class Embedding(Module):
    """Lookup table mapping integer tokens to vectors."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter((gen.standard_normal((num_embeddings, dim)) * 0.02).astype(_DTYPE))
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, indices: np.ndarray) -> Tensor:
        idx = np.asarray(indices)
        if (idx < 0).any() or (idx >= self.num_embeddings).any():
            raise IndexError("embedding index out of range")
        return self.weight[idx]


class SiLU(Module):
    """The SiLU / swish activation used throughout the U-Net."""

    def forward(self, x: Tensor) -> Tensor:
        return x.silu()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.silu_array(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

"""Optimisers and gradient utilities.

The paper trains with Adam (learning rate 2e-4) and gradient clipping at 1.0;
both are provided here, plus plain SGD for the smaller baseline models.
"""

from __future__ import annotations

import numpy as np

from .modules import Parameter


def clip_grad_norm(parameters: "list[Parameter]", max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (useful for logging).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, vel in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                vel *= self.momentum
                vel += p.grad
                p.data -= self.lr * vel
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 2e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

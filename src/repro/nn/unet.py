"""U-Net backbone for the discrete diffusion model.

Follows the DDPM / D3PM architecture described in Section IV-A of the paper:
several resolution levels, two convolutional residual blocks per level,
optional self-attention at selected resolutions, sinusoidal timestep
embeddings injected into every residual block, stride-2 convolution for
downsampling and nearest-neighbour + conv for upsampling.  The network maps a
one-hot-encoded noisy topology tensor (and the timestep) to per-pixel logits
of the clean-sample posterior ``p_theta(x_0 | x_k)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import functional as F
from .modules import Conv2d, Dropout, GroupNorm, Identity, Linear, Module
from .tensor import Tensor, concatenate


def _norm_groups(channels: int) -> int:
    """Largest group count in {8, 4, 2, 1} dividing ``channels``."""
    for groups in (8, 4, 2, 1):
        if channels % groups == 0:
            return groups
    return 1


class TimestepEmbedding(Module):
    """Two-layer MLP applied to the sinusoidal timestep features."""

    def __init__(self, model_channels: int, embed_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.model_channels = model_channels
        self.dense_in = Linear(model_channels, embed_dim, rng=rng)
        self.dense_out = Linear(embed_dim, embed_dim, rng=rng)

    def forward(self, timesteps: np.ndarray) -> Tensor:
        base = F.sinusoidal_embedding(timesteps, self.model_channels)
        hidden = self.dense_in(Tensor(base)).silu()
        return self.dense_out(hidden).silu()

    def infer(self, timesteps: np.ndarray) -> np.ndarray:
        base = F.sinusoidal_embedding(timesteps, self.model_channels)
        hidden = F.silu_array(self.dense_in.infer(base))
        return F.silu_array(self.dense_out.infer(hidden))


class ResidualBlock(Module):
    """GroupNorm → SiLU → Conv, with timestep injection and a learned skip."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        embed_dim: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.norm1 = GroupNorm(_norm_groups(in_channels), in_channels)
        self.conv1 = Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.time_proj = Linear(embed_dim, out_channels, rng=rng)
        self.norm2 = GroupNorm(_norm_groups(out_channels), out_channels)
        self.dropout = Dropout(dropout, rng=rng)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        if in_channels != out_channels:
            self.skip = Conv2d(in_channels, out_channels, 1, rng=rng)
        else:
            self.skip = Identity()

    def forward(self, x: Tensor, time_emb: Tensor) -> Tensor:
        hidden = self.conv1(self.norm1(x).silu())
        time_term = self.time_proj(time_emb.silu())
        batch, channels = time_term.shape
        hidden = hidden + time_term.reshape(batch, channels, 1, 1)
        hidden = self.conv2(self.dropout(self.norm2(hidden).silu()))
        return hidden + self.skip(x)

    def infer(self, x: np.ndarray, time_emb: np.ndarray) -> np.ndarray:
        hidden = self.conv1.infer(F.silu_array(self.norm1.infer(x)))
        time_term = self.time_proj.infer(F.silu_array(time_emb))
        batch, channels = time_term.shape
        hidden += time_term.reshape(batch, channels, 1, 1)
        hidden = self.conv2.infer(F.silu_array(self.norm2.infer(hidden)))
        hidden += self.skip.infer(x)
        return hidden


class SelfAttention2d(Module):
    """Single-head self-attention over spatial positions of a feature map."""

    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.channels = channels
        self.norm = GroupNorm(_norm_groups(channels), channels)
        self.qkv = Conv2d(channels, channels * 3, 1, rng=rng)
        self.proj = Conv2d(channels, channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        qkv = self.qkv(self.norm(x))
        qkv_flat = qkv.reshape(batch, 3, channels, height * width)
        q = qkv_flat[:, 0]
        k = qkv_flat[:, 1]
        v = qkv_flat[:, 2]
        scale = 1.0 / np.sqrt(channels)
        attn = F.softmax((q.transpose(0, 2, 1) @ k) * scale, axis=-1)
        out = v @ attn.transpose(0, 2, 1)
        out = out.reshape(batch, channels, height, width)
        return x + self.proj(out)

    def infer(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        qkv = self.qkv.infer(self.norm.infer(x))
        qkv_flat = qkv.reshape(batch, 3, channels, height * width)
        q = qkv_flat[:, 0]
        k = qkv_flat[:, 1]
        v = qkv_flat[:, 2]
        scale = np.float32(1.0 / np.sqrt(channels))
        attn = F.softmax_array((q.transpose(0, 2, 1) @ k) * scale, axis=-1)
        out = v @ attn.transpose(0, 2, 1)
        out = out.reshape(batch, channels, height, width)
        return x + self.proj.infer(out)


class Downsample(Module):
    """Stride-2 convolution halving the spatial resolution."""

    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv = Conv2d(channels, channels, 3, stride=2, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return self.conv.infer(x)


class Upsample(Module):
    """Nearest-neighbour upsample followed by a 3x3 convolution."""

    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv = Conv2d(channels, channels, 3, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(F.upsample_nearest(x, 2))

    def infer(self, x: np.ndarray) -> np.ndarray:
        return self.conv.infer(F.upsample_nearest_array(x, 2))


@dataclass
class UNetConfig:
    """Architecture hyper-parameters of the diffusion backbone.

    The paper's configuration is ``in_channels=16`` (deep squish channels),
    ``image_size=32``, ``model_channels=128``, ``channel_mult=(1, 2, 2, 2)``,
    attention at resolution 16, two residual blocks per level and dropout 0.1.
    The defaults here are a laptop-scale version of the same network; tests
    shrink it further.
    """

    in_channels: int = 16
    num_classes: int = 2
    image_size: int = 32
    model_channels: int = 32
    channel_mult: tuple[int, ...] = (1, 2, 2)
    num_res_blocks: int = 2
    attention_resolutions: tuple[int, ...] = (16,)
    dropout: float = 0.1
    seed: int = 0

    paper_defaults: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.paper_defaults:
            self.model_channels = 128
            self.channel_mult = (1, 2, 2, 2)
            self.attention_resolutions = (16,)
            self.num_res_blocks = 2
            self.dropout = 0.1
        if self.image_size % (2 ** (len(self.channel_mult) - 1)):
            raise ValueError(
                "image_size must be divisible by 2**(levels-1) so every "
                "downsampling step halves the resolution exactly"
            )


class UNet(Module):
    """Predicts per-pixel class logits of the clean topology ``x_0``.

    Input  : one-hot noisy tensor, shape ``(N, in_channels * num_classes, M, M)``.
    Output : logits, shape ``(N, in_channels, num_classes, M, M)``.
    """

    def __init__(self, config: UNetConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        ch = config.model_channels
        embed_dim = ch * 4

        self.time_embedding = TimestepEmbedding(ch, embed_dim, rng)
        self.conv_in = Conv2d(config.in_channels * config.num_classes, ch, 3, padding=1, rng=rng)

        # --- encoder ---------------------------------------------------- #
        self.down_blocks: list[tuple[str, Module]] = []
        self.skip_channels: list[int] = [ch]
        current = ch
        resolution = config.image_size
        block_idx = 0
        for level, mult in enumerate(config.channel_mult):
            out_ch = ch * mult
            for _ in range(config.num_res_blocks):
                block = ResidualBlock(current, out_ch, embed_dim, config.dropout, rng)
                self._register_down(f"down_res_{block_idx}", block, "res")
                current = out_ch
                if resolution in config.attention_resolutions:
                    attn = SelfAttention2d(current, rng)
                    self._register_down(f"down_attn_{block_idx}", attn, "attn")
                self.skip_channels.append(current)
                block_idx += 1
            if level != len(config.channel_mult) - 1:
                down = Downsample(current, rng)
                self._register_down(f"down_sample_{level}", down, "down")
                self.skip_channels.append(current)
                resolution //= 2

        # --- bottleneck -------------------------------------------------- #
        self.mid_block1 = ResidualBlock(current, current, embed_dim, config.dropout, rng)
        self.mid_attn = SelfAttention2d(current, rng)
        self.mid_block2 = ResidualBlock(current, current, embed_dim, config.dropout, rng)

        # --- decoder ------------------------------------------------------ #
        self.up_blocks: list[tuple[str, Module]] = []
        block_idx = 0
        for level, mult in reversed(list(enumerate(config.channel_mult))):
            out_ch = ch * mult
            for _ in range(config.num_res_blocks + 1):
                skip_ch = self.skip_channels.pop()
                block = ResidualBlock(current + skip_ch, out_ch, embed_dim, config.dropout, rng)
                self._register_up(f"up_res_{block_idx}", block, "res")
                current = out_ch
                if resolution in config.attention_resolutions:
                    attn = SelfAttention2d(current, rng)
                    self._register_up(f"up_attn_{block_idx}", attn, "attn")
                block_idx += 1
            if level != 0:
                up = Upsample(current, rng)
                self._register_up(f"up_sample_{level}", up, "up")
                resolution *= 2

        self.norm_out = GroupNorm(_norm_groups(current), current)
        self.conv_out = Conv2d(
            current, config.in_channels * config.num_classes, 3, padding=1, rng=rng
        )

    # -- registration helpers (keep ordered lists AND named children) ----- #
    def _register_down(self, name: str, module: Module, kind: str) -> None:
        setattr(self, name, module)
        self.down_blocks.append((kind, module))

    def _register_up(self, name: str, module: Module, kind: str) -> None:
        setattr(self, name, module)
        self.up_blocks.append((kind, module))

    # -- forward ----------------------------------------------------------- #
    def forward(
        self, x_onehot: "Tensor | np.ndarray", timesteps: np.ndarray, inference: bool = False
    ) -> Tensor:
        if inference:
            data = x_onehot.data if isinstance(x_onehot, Tensor) else np.asarray(x_onehot)
            return Tensor(self.infer(data, timesteps))
        config = self.config
        batch = x_onehot.shape[0]
        time_emb = self.time_embedding(timesteps)

        hidden = self.conv_in(x_onehot)
        skips = [hidden]
        for kind, module in self.down_blocks:
            if kind == "res":
                hidden = module(hidden, time_emb)
                skips.append(hidden)
            elif kind == "attn":
                hidden = module(hidden)
                skips[-1] = hidden
            else:  # downsample
                hidden = module(hidden)
                skips.append(hidden)

        hidden = self.mid_block1(hidden, time_emb)
        hidden = self.mid_attn(hidden)
        hidden = self.mid_block2(hidden, time_emb)

        for kind, module in self.up_blocks:
            if kind == "res":
                skip = skips.pop()
                hidden = module(concatenate([hidden, skip], axis=1), time_emb)
            elif kind == "attn":
                hidden = module(hidden)
            else:  # upsample
                hidden = module(hidden)

        out = self.conv_out(self.norm_out(hidden).silu())
        return out.reshape(
            batch, config.in_channels, config.num_classes, config.image_size, config.image_size
        )

    # -- inference ---------------------------------------------------------- #
    def infer(self, x_onehot: np.ndarray, timesteps: np.ndarray) -> np.ndarray:
        """Gradient-free forward pass on plain arrays (the sampling hot path).

        Mirrors :meth:`forward` operation by operation but never touches the
        autodiff tape: dropout is skipped, all intermediates are raw float32
        arrays, and convolutions run through the matmul-based array kernels.
        """
        config = self.config
        x = np.ascontiguousarray(x_onehot, dtype=np.float32)
        batch = x.shape[0]
        steps = np.asarray(timesteps).reshape(-1)
        if steps.size > 1 and np.all(steps == steps[0]):
            # Reverse diffusion feeds the whole batch the same timestep.  A
            # single-row embedding broadcast over the batch is cheaper AND
            # keeps per-sample results bitwise independent of the batch size
            # (BLAS picks different kernels for 1-row and N-row matmuls).
            time_emb = self.time_embedding.infer(steps[:1])
        else:
            time_emb = self.time_embedding.infer(steps)

        hidden = self.conv_in.infer(x)
        skips = [hidden]
        for kind, module in self.down_blocks:
            if kind == "res":
                hidden = module.infer(hidden, time_emb)
                skips.append(hidden)
            elif kind == "attn":
                hidden = module.infer(hidden)
                skips[-1] = hidden
            else:  # downsample
                hidden = module.infer(hidden)
                skips.append(hidden)

        hidden = self.mid_block1.infer(hidden, time_emb)
        hidden = self.mid_attn.infer(hidden)
        hidden = self.mid_block2.infer(hidden, time_emb)

        for kind, module in self.up_blocks:
            if kind == "res":
                skip = skips.pop()
                hidden = module.infer(np.concatenate([hidden, skip], axis=1), time_emb)
            elif kind == "attn":
                hidden = module.infer(hidden)
            else:  # upsample
                hidden = module.infer(hidden)

        out = self.conv_out.infer(F.silu_array(self.norm_out.infer(hidden)))
        return out.reshape(
            batch, config.in_channels, config.num_classes, config.image_size, config.image_size
        )

"""Differentiable functional operators built on :class:`repro.nn.Tensor`.

Contains the operations the U-Net backbone and the baseline generators need:
2-D convolution (im2col), nearest-neighbour upsampling, average pooling,
normalisation, stable softmax / log-softmax, categorical losses and dropout.
"""

from __future__ import annotations

import functools

import numpy as np

from .tensor import Tensor, _DTYPE, is_grad_enabled


def _pad2d(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two trailing spatial axes of ``(N, C, H, W)``.

    Equivalent to ``np.pad`` with constant zeros but substantially cheaper on
    the small feature maps this library works with.
    """
    if pad == 0:
        return x
    n, c, h, w = x.shape
    out = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=x.dtype)
    out[:, :, pad : pad + h, pad : pad + w] = x
    return out


# ---------------------------------------------------------------------- #
# im2col helpers (shared by conv2d forward and backward)
# ---------------------------------------------------------------------- #
def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    x = _pad2d(x, pad)
    hp, wp = x.shape[2], x.shape[3]
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = np.ascontiguousarray(view).reshape(n, c * kh * kw, out_h * out_w)
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col` (scatter-add of overlapping patches)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x_padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[
                :, :, i, j
            ]
    if pad:
        return x_padded[:, :, pad : pad + h, pad : pad + w]
    return x_padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: "Tensor | None" = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over ``(N, C, H, W)`` input.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)`` and ``bias``
    shape ``(out_channels,)``.
    """
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if ic != c:
        raise ValueError(f"weight expects {ic} input channels, got {c}")
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride, padding)
    w_mat = weight.data.reshape(oc, -1)
    out = np.einsum("ok,nkl->nol", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, oc, 1)
    out = out.reshape(n, oc, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, oc, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 2)))
        if weight.requires_grad:
            grad_w = np.einsum("nol,nkl->ok", grad_mat, cols, optimize=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("ok,nol->nkl", w_mat, grad_mat, optimize=True)
            grad_x = _col2im(grad_cols, (n, c, h, w), kh, kw, stride, padding)
            x._accumulate(grad_x)

    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    return Tensor(
        out,
        requires_grad=requires,
        _parents=parents if requires else (),
        _backward_fn=backward_fn if requires else None,
    )


def linear(x: Tensor, weight: Tensor, bias: "Tensor | None" = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for ``(..., in_features)`` input."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def upsample_nearest(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling of ``(N, C, H, W)`` by integer ``scale``."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    out_data = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)

    def backward_fn(grad: np.ndarray) -> None:
        n, c, h_out, w_out = grad.shape
        h, w = h_out // scale, w_out // scale
        grad_x = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(grad_x)

    requires = is_grad_enabled() and x.requires_grad
    return Tensor(
        out_data,
        requires_grad=requires,
        _parents=(x,) if requires else (),
        _backward_fn=backward_fn if requires else None,
    )


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling with a square ``kernel``."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {h}x{w} not divisible by kernel {kernel}")
    reshaped = x.reshape(n, c, h // kernel, kernel, w // kernel, kernel)
    return reshaped.mean(axis=(3, 5))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy_with_logits(logits: Tensor, targets: np.ndarray, axis: int = -1) -> Tensor:
    """Mean cross-entropy between ``logits`` and one-hot ``targets``.

    ``targets`` is a plain NumPy array of the same shape as ``logits`` whose
    entries along ``axis`` form a probability vector (usually one-hot).
    """
    log_probs = log_softmax(logits, axis=axis)
    per_element = -(Tensor(np.asarray(targets, dtype=_DTYPE)) * log_probs).sum(axis=axis)
    return per_element.mean()


def kl_divergence_categorical(
    target_probs: np.ndarray, logits: Tensor, axis: int = -1, eps: float = 1e-10
) -> Tensor:
    """Mean ``KL(target || softmax(logits))`` for fixed target distributions.

    The target is treated as a constant (exactly the role of the forward
    posterior ``q(x_{k-1} | x_k, x_0)`` in the diffusion loss).
    """
    target = np.asarray(target_probs, dtype=_DTYPE)
    log_probs = log_softmax(logits, axis=axis)
    entropy_term = float((target * np.log(np.clip(target, eps, 1.0))).sum(axis=axis).mean())
    cross_term = -(Tensor(target) * log_probs).sum(axis=axis).mean()
    return cross_term + entropy_term


def group_norm(
    x: Tensor, num_groups: int, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Group normalisation for ``(N, C, H, W)`` tensors."""
    n, c, h, w = x.shape
    if c % num_groups:
        raise ValueError(f"{c} channels not divisible by {num_groups} groups")
    grouped = x.reshape(n, num_groups, c // num_groups * h * w)
    mean = grouped.mean(axis=2, keepdims=True)
    centred = grouped - mean
    var = (centred * centred).mean(axis=2, keepdims=True)
    normed = centred / ((var + eps) ** 0.5)
    normed = normed.reshape(n, c, h, w)
    return normed * weight.reshape(1, c, 1, 1) + bias.reshape(1, c, 1, 1)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    var = (centred * centred).mean(axis=-1, keepdims=True)
    normed = centred / ((var + eps) ** 0.5)
    return normed * weight + bias


def dropout(
    x: Tensor, rate: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout; identity when not training or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must lie in [0, 1)")
    mask = (rng.random(x.shape) >= rate).astype(_DTYPE) / (1.0 - rate)

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    requires = is_grad_enabled() and x.requires_grad
    return Tensor(
        x.data * mask,
        requires_grad=requires,
        _parents=(x,) if requires else (),
        _backward_fn=backward_fn if requires else None,
    )


# ---------------------------------------------------------------------- #
# gradient-free array kernels (inference hot path)
# ---------------------------------------------------------------------- #
# The functions below are array-in / array-out twins of the differentiable
# operators above.  They never touch the autodiff tape: no Tensor wrappers,
# no backward closures, contiguous float32 throughout, and matmul instead of
# einsum (which re-derives a contraction path on every call).  The batched
# sampling engine runs the whole U-Net through these.


def conv2d_array(
    x: np.ndarray,
    weight: np.ndarray,
    bias: "np.ndarray | None" = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Gradient-free twin of :func:`conv2d` on plain arrays."""
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if ic != c:
        raise ValueError(f"weight expects {ic} input channels, got {c}")
    if kh == 1 and kw == 1 and stride == 1 and padding == 0:
        # Pointwise convolution (attention qkv/proj, skip projections) is a
        # plain channel matmul; skip the im2col rearrangement entirely.
        out = np.matmul(weight.reshape(oc, c), x.reshape(n, c, h * w))
        if bias is not None:
            out += bias.reshape(1, oc, 1)
        return out.reshape(n, oc, h, w)
    out_h, out_w, taps = _conv_tap_geometry(h, w, kh, kw, stride, padding)
    # Gather the kh*kw patch taps with strided slice copies: on the small
    # feature maps of this model that beats materialising the 6-D as_strided
    # view that the taped conv uses (it needs the view for the backward).
    # Padding is folded into the gather — border taps copy only the valid
    # sub-window of the *unpadded* input into a zeroed column buffer, so no
    # padded copy of the input is ever materialised.
    if padding:
        cols = np.zeros((n, c, kh * kw, out_h, out_w), dtype=x.dtype)
    else:
        cols = np.empty((n, c, kh * kw, out_h, out_w), dtype=x.dtype)
    for tap, dst_rows, dst_cols, src_rows, src_cols in taps:
        cols[:, :, tap, dst_rows, dst_cols] = x[:, :, src_rows, src_cols]
    out = np.matmul(weight.reshape(oc, -1), cols.reshape(n, c * kh * kw, out_h * out_w))
    if bias is not None:
        out += bias.reshape(1, oc, 1)
    return out.reshape(n, oc, out_h, out_w)


@functools.lru_cache(maxsize=256)
def _conv_tap_geometry(
    h: int, w: int, kh: int, kw: int, stride: int, padding: int
) -> tuple[int, int, tuple]:
    """Precomputed slice pairs mapping input windows to im2col tap planes.

    Returns ``(out_h, out_w, taps)`` where each tap entry is
    ``(tap_index, dst_row_slice, dst_col_slice, src_row_slice, src_col_slice)``
    restricted to the region where the (virtually padded) window overlaps the
    real input.  Cached because the sampler calls the same few convolution
    geometries thousands of times.
    """
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    taps = []
    for i in range(kh):
        off_i = i - padding
        r0 = 0 if off_i >= 0 else (-off_i + stride - 1) // stride
        r1 = min((h - 1 - off_i) // stride, out_h - 1)
        if r1 < r0:
            continue
        for j in range(kw):
            off_j = j - padding
            c0 = 0 if off_j >= 0 else (-off_j + stride - 1) // stride
            c1 = min((w - 1 - off_j) // stride, out_w - 1)
            if c1 < c0:
                continue
            taps.append(
                (
                    i * kw + j,
                    slice(r0, r1 + 1),
                    slice(c0, c1 + 1),
                    slice(off_i + stride * r0, off_i + stride * r1 + 1, stride),
                    slice(off_j + stride * c0, off_j + stride * c1 + 1, stride),
                )
            )
    return out_h, out_w, tuple(taps)


def silu_array(x: np.ndarray) -> np.ndarray:
    """``x * sigmoid(x)`` on a plain array (three ufunc passes, one temp)."""
    out = np.exp(-x)
    out += 1.0
    np.divide(x, out, out=out)
    return out


def softmax_array(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on a plain array."""
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def group_norm_array(
    x: np.ndarray, num_groups: int, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Gradient-free twin of :func:`group_norm` on plain arrays."""
    n, c, h, w = x.shape
    if c % num_groups:
        raise ValueError(f"{c} channels not divisible by {num_groups} groups")
    grouped = x.reshape(n, num_groups, -1)
    inv_count = _DTYPE(1.0 / grouped.shape[2])
    # np.add.reduce is np.sum minus the dispatch wrapper — measurable on the
    # thousands of small reductions a sampling run performs.  Variance must
    # be computed from the centred values: the two-moment shortcut
    # (E[x²] − E[x]²) cancels catastrophically in float32 once a feature map
    # develops a mean large relative to its spread.
    mean = np.add.reduce(grouped, axis=2) * inv_count
    centred = grouped - mean[:, :, None]
    var = np.add.reduce(centred * centred, axis=2) * inv_count
    inv_std = 1.0 / np.sqrt(var + eps)  # (n, groups)
    group_size = c // num_groups
    # Fold normalisation and the affine transform into one per-channel
    # scale/shift: out = x * scale + shift.
    scale = np.repeat(inv_std, group_size, axis=1) * weight  # (n, c)
    shift = bias - np.repeat(mean, group_size, axis=1) * scale
    out = x * scale[:, :, None, None]
    out += shift[:, :, None, None]
    return out


def layer_norm_array(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Gradient-free twin of :func:`layer_norm` on plain arrays."""
    mean = x.mean(axis=-1, keepdims=True, dtype=_DTYPE)
    centred = x - mean
    var = np.mean(centred * centred, axis=-1, keepdims=True, dtype=_DTYPE)
    return (centred / np.sqrt(var + eps)) * weight + bias


def upsample_nearest_array(x: np.ndarray, scale: int = 2) -> np.ndarray:
    """Gradient-free twin of :func:`upsample_nearest` on plain arrays."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return np.repeat(np.repeat(x, scale, axis=2), scale, axis=3)


def linear_array(x: np.ndarray, weight: np.ndarray, bias: "np.ndarray | None" = None) -> np.ndarray:
    """Gradient-free twin of :func:`linear` on plain arrays."""
    out = x @ weight.T
    if bias is not None:
        out += bias
    return out


def sinusoidal_embedding(timesteps: np.ndarray, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Sinusoidal position embedding of diffusion timesteps (Transformer-style).

    Returns a plain ``(len(timesteps), dim)`` array; it is an input feature,
    not a learnable quantity.
    """
    if dim % 2:
        raise ValueError("embedding dimension must be even")
    timesteps = np.asarray(timesteps, dtype=np.float64).reshape(-1)
    half = dim // 2
    freqs = np.exp(-np.log(max_period) * np.arange(half, dtype=np.float64) / half)
    args = timesteps[:, None] * freqs[None, :]
    return np.concatenate([np.sin(args), np.cos(args)], axis=1).astype(_DTYPE)

"""Differentiable functional operators built on :class:`repro.nn.Tensor`.

Contains the operations the U-Net backbone and the baseline generators need:
2-D convolution (im2col), nearest-neighbour upsampling, average pooling,
normalisation, stable softmax / log-softmax, categorical losses and dropout.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _DTYPE


# ---------------------------------------------------------------------- #
# im2col helpers (shared by conv2d forward and backward)
# ---------------------------------------------------------------------- #
def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    hp, wp = x.shape[2], x.shape[3]
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = np.ascontiguousarray(view).reshape(n, c * kh * kw, out_h * out_w)
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col` (scatter-add of overlapping patches)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x_padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[
                :, :, i, j
            ]
    if pad:
        return x_padded[:, :, pad : pad + h, pad : pad + w]
    return x_padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: "Tensor | None" = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over ``(N, C, H, W)`` input.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)`` and ``bias``
    shape ``(out_channels,)``.
    """
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if ic != c:
        raise ValueError(f"weight expects {ic} input channels, got {c}")
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride, padding)
    w_mat = weight.data.reshape(oc, -1)
    out = np.einsum("ok,nkl->nol", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, oc, 1)
    out = out.reshape(n, oc, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, oc, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 2)))
        if weight.requires_grad:
            grad_w = np.einsum("nol,nkl->ok", grad_mat, cols, optimize=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("ok,nol->nkl", w_mat, grad_mat, optimize=True)
            grad_x = _col2im(grad_cols, (n, c, h, w), kh, kw, stride, padding)
            x._accumulate(grad_x)

    requires = any(p.requires_grad for p in parents)
    return Tensor(
        out,
        requires_grad=requires,
        _parents=parents if requires else (),
        _backward_fn=backward_fn if requires else None,
    )


def linear(x: Tensor, weight: Tensor, bias: "Tensor | None" = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for ``(..., in_features)`` input."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def upsample_nearest(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling of ``(N, C, H, W)`` by integer ``scale``."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    out_data = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)

    def backward_fn(grad: np.ndarray) -> None:
        n, c, h_out, w_out = grad.shape
        h, w = h_out // scale, w_out // scale
        grad_x = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(grad_x)

    return Tensor(
        out_data,
        requires_grad=x.requires_grad,
        _parents=(x,) if x.requires_grad else (),
        _backward_fn=backward_fn if x.requires_grad else None,
    )


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling with a square ``kernel``."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {h}x{w} not divisible by kernel {kernel}")
    reshaped = x.reshape(n, c, h // kernel, kernel, w // kernel, kernel)
    return reshaped.mean(axis=(3, 5))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy_with_logits(logits: Tensor, targets: np.ndarray, axis: int = -1) -> Tensor:
    """Mean cross-entropy between ``logits`` and one-hot ``targets``.

    ``targets`` is a plain NumPy array of the same shape as ``logits`` whose
    entries along ``axis`` form a probability vector (usually one-hot).
    """
    log_probs = log_softmax(logits, axis=axis)
    per_element = -(Tensor(np.asarray(targets, dtype=_DTYPE)) * log_probs).sum(axis=axis)
    return per_element.mean()


def kl_divergence_categorical(
    target_probs: np.ndarray, logits: Tensor, axis: int = -1, eps: float = 1e-10
) -> Tensor:
    """Mean ``KL(target || softmax(logits))`` for fixed target distributions.

    The target is treated as a constant (exactly the role of the forward
    posterior ``q(x_{k-1} | x_k, x_0)`` in the diffusion loss).
    """
    target = np.asarray(target_probs, dtype=_DTYPE)
    log_probs = log_softmax(logits, axis=axis)
    entropy_term = float((target * np.log(np.clip(target, eps, 1.0))).sum(axis=axis).mean())
    cross_term = -(Tensor(target) * log_probs).sum(axis=axis).mean()
    return cross_term + entropy_term


def group_norm(
    x: Tensor, num_groups: int, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Group normalisation for ``(N, C, H, W)`` tensors."""
    n, c, h, w = x.shape
    if c % num_groups:
        raise ValueError(f"{c} channels not divisible by {num_groups} groups")
    grouped = x.reshape(n, num_groups, c // num_groups * h * w)
    mean = grouped.mean(axis=2, keepdims=True)
    centred = grouped - mean
    var = (centred * centred).mean(axis=2, keepdims=True)
    normed = centred / ((var + eps) ** 0.5)
    normed = normed.reshape(n, c, h, w)
    return normed * weight.reshape(1, c, 1, 1) + bias.reshape(1, c, 1, 1)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    var = (centred * centred).mean(axis=-1, keepdims=True)
    normed = centred / ((var + eps) ** 0.5)
    return normed * weight + bias


def dropout(
    x: Tensor, rate: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout; identity when not training or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must lie in [0, 1)")
    mask = (rng.random(x.shape) >= rate).astype(_DTYPE) / (1.0 - rate)

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor(
        x.data * mask,
        requires_grad=x.requires_grad,
        _parents=(x,) if x.requires_grad else (),
        _backward_fn=backward_fn if x.requires_grad else None,
    )


def sinusoidal_embedding(timesteps: np.ndarray, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Sinusoidal position embedding of diffusion timesteps (Transformer-style).

    Returns a plain ``(len(timesteps), dim)`` array; it is an input feature,
    not a learnable quantity.
    """
    if dim % 2:
        raise ValueError("embedding dimension must be even")
    timesteps = np.asarray(timesteps, dtype=np.float64).reshape(-1)
    half = dim // 2
    freqs = np.exp(-np.log(max_period) * np.arange(half, dtype=np.float64) / half)
    args = timesteps[:, None] * freqs[None, :]
    return np.concatenate([np.sin(args), np.cos(args)], axis=1).astype(_DTYPE)

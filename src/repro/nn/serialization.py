"""Checkpoint saving and loading for modules (NumPy ``.npz`` format)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .modules import Module


def save_checkpoint(module: Module, path: "str | Path") -> None:
    """Write every parameter of ``module`` to an ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    # '.' is not a valid npz key separator for attribute access but is fine as
    # a plain key; keep names verbatim so load is a strict inverse.
    np.savez_compressed(path, **state)


def load_checkpoint(module: Module, path: "str | Path") -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    path = Path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)

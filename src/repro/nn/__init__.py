"""Pure-NumPy neural-network substrate.

Provides a tape-based autograd engine, a module system with the layers used
by diffusion U-Nets (convolution, group norm, attention), optimisers and
checkpointing.  This replaces PyTorch, which is not available in the
reproduction environment; the mathematical behaviour is identical, only the
throughput differs.
"""

from . import functional
from .modules import (
    Conv2d,
    Dropout,
    Embedding,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    SiLU,
)
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialization import load_checkpoint, save_checkpoint
from .tensor import (
    Tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    ones,
    randn,
    set_grad_enabled,
    stack,
    tensor,
    zeros,
)
from .unet import UNet, UNetConfig

__all__ = [
    "functional",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "Module",
    "Parameter",
    "Sequential",
    "Identity",
    "Linear",
    "Conv2d",
    "GroupNorm",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "SiLU",
    "ReLU",
    "Sigmoid",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_checkpoint",
    "load_checkpoint",
    "UNet",
    "UNetConfig",
]

"""Fixed-size extension of squish patterns (adaptive squish, ref. [14]).

Topology matrices extracted from different clips have different shapes.  The
neural generator needs a fixed input size, so every squish pattern is extended
to a square topology matrix with a fixed side length by splitting existing
intervals into equal parts (which does not change the geometry) and, when a
dimension has more intervals than the target, by merging mergeable adjacent
columns/rows (identical columns can be merged losslessly).
"""

from __future__ import annotations

import numpy as np

from .squish import SquishPattern


class PaddingError(ValueError):
    """Raised when a pattern cannot be extended/reduced to the target size."""


def _split_axis(
    topology: np.ndarray, delta: np.ndarray, target: int, axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """Grow ``axis`` to ``target`` intervals by splitting the widest intervals.

    Splitting an interval of length L into two intervals (ceil(L/2),
    floor(L/2)) and duplicating the corresponding row/column keeps the decoded
    geometry identical, because the duplicated cells carry the same bit.
    """
    topo = topology.copy()
    d = list(int(v) for v in delta)
    while len(d) < target:
        # Split the widest interval that can still be split into two >=1 parts.
        order = sorted(range(len(d)), key=lambda i: -d[i])
        idx = next((i for i in order if d[i] >= 2), None)
        if idx is None:
            raise PaddingError(
                "cannot extend pattern: all intervals already have length 1"
            )
        left = (d[idx] + 1) // 2
        right = d[idx] - left
        d[idx : idx + 1] = [left, right]
        topo = np.insert(topo, idx, topo.take(idx, axis=axis), axis=axis)
    return topo, np.asarray(d, dtype=np.int64)


def _merge_axis(
    topology: np.ndarray, delta: np.ndarray, target: int, axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """Shrink ``axis`` to ``target`` intervals by merging identical neighbours.

    Two adjacent columns (or rows) can be merged losslessly iff their bits are
    identical; the merged interval is the sum of the two.  If no further
    lossless merge exists the pattern is rejected — the caller should use a
    larger target size instead of silently changing geometry.
    """
    topo = topology.copy()
    d = list(int(v) for v in delta)
    while len(d) > target:
        merged = False
        for i in range(len(d) - 1):
            a = topo.take(i, axis=axis)
            b = topo.take(i + 1, axis=axis)
            if np.array_equal(a, b):
                d[i] = d[i] + d[i + 1]
                del d[i + 1]
                topo = np.delete(topo, i + 1, axis=axis)
                merged = True
                break
        if not merged:
            raise PaddingError(
                f"cannot losslessly reduce axis {axis} to {target} intervals"
            )
    return topo, np.asarray(d, dtype=np.int64)


def pad_to_size(pattern: SquishPattern, size: int) -> SquishPattern:
    """Extend (or losslessly reduce) a pattern to a ``size x size`` topology.

    The decoded layout of the returned pattern is geometrically identical to
    the input — only the squish factorisation changes.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    topo = pattern.topology
    dx = pattern.delta_x
    dy = pattern.delta_y

    # Columns (axis=1 of topology) follow delta_x.
    if dx.shape[0] < size:
        topo, dx = _split_axis(topo, dx, size, axis=1)
    elif dx.shape[0] > size:
        topo, dx = _merge_axis(topo, dx, size, axis=1)
    # Rows (axis=0) follow delta_y.
    if dy.shape[0] < size:
        topo, dy = _split_axis(topo, dy, size, axis=0)
    elif dy.shape[0] > size:
        topo, dy = _merge_axis(topo, dy, size, axis=0)

    return SquishPattern(topo, dx, dy, origin=pattern.origin)


def canonicalize(pattern: SquishPattern) -> SquishPattern:
    """Merge every mergeable adjacent row/column (minimal squish form).

    This is the canonical representation used when computing pattern
    complexity: adjacent identical rows/columns carry no topology information
    and are collapsed, so (cx, cy) reflect true scan-line structure.
    """
    topo = pattern.topology.copy()
    dx = list(int(v) for v in pattern.delta_x)
    dy = list(int(v) for v in pattern.delta_y)

    def merge_all(topo: np.ndarray, d: list[int], axis: int):
        i = 0
        while i < len(d) - 1:
            a = topo.take(i, axis=axis)
            b = topo.take(i + 1, axis=axis)
            if np.array_equal(a, b):
                d[i] += d[i + 1]
                del d[i + 1]
                topo = np.delete(topo, i + 1, axis=axis)
            else:
                i += 1
        return topo, d

    topo, dx = merge_all(topo, dx, axis=1)
    topo, dy = merge_all(topo, dy, axis=0)
    return SquishPattern(
        topo,
        np.asarray(dx, dtype=np.int64),
        np.asarray(dy, dtype=np.int64),
        origin=pattern.origin,
    )

"""Squish and Deep Squish pattern representations (lossless layout encodings)."""

from .deep_squish import (
    fold,
    fold_batch,
    naive_pack,
    naive_unpack,
    unfold,
    unfold_batch,
)
from .padding import PaddingError, canonicalize, pad_to_size
from .squish import SquishPattern, empty_pattern, squish, unsquish, window_of

__all__ = [
    "SquishPattern",
    "squish",
    "unsquish",
    "empty_pattern",
    "window_of",
    "pad_to_size",
    "canonicalize",
    "PaddingError",
    "fold",
    "unfold",
    "fold_batch",
    "unfold_batch",
    "naive_pack",
    "naive_unpack",
]

"""Squish pattern representation (Section II-B of the paper).

A squish pattern losslessly encodes a rectilinear layout clip as a binary
topology matrix plus two geometric vectors ``delta_x`` and ``delta_y``.  Scan
lines are placed along every polygon edge (and the window boundary); the
intervals between adjacent scan lines become the matrix columns/rows, and a
cell is 1 when the corresponding region of the layout is covered by a shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Layout, Rect, validate_grid


@dataclass
class SquishPattern:
    """Lossless (topology, delta_x, delta_y) encoding of a layout clip.

    Attributes
    ----------
    topology:
        Binary matrix of shape ``(len(delta_y), len(delta_x))``.
    delta_x, delta_y:
        Positive interval lengths (nm) between adjacent scan lines.
    origin:
        Lower-left corner of the encoded window (defaults to (0, 0)).
    """

    topology: np.ndarray
    delta_x: np.ndarray
    delta_y: np.ndarray
    origin: tuple[int, int] = (0, 0)

    def __post_init__(self) -> None:
        self.topology = validate_grid(self.topology)
        self.delta_x = np.asarray(self.delta_x, dtype=np.int64)
        self.delta_y = np.asarray(self.delta_y, dtype=np.int64)
        if self.delta_x.ndim != 1 or self.delta_y.ndim != 1:
            raise ValueError("delta vectors must be 1-D")
        if self.topology.shape != (self.delta_y.shape[0], self.delta_x.shape[0]):
            raise ValueError(
                "topology shape "
                f"{self.topology.shape} does not match delta vector lengths "
                f"({self.delta_y.shape[0]}, {self.delta_x.shape[0]})"
            )
        if (self.delta_x <= 0).any() or (self.delta_y <= 0).any():
            raise ValueError("delta vector entries must be strictly positive")

    @property
    def width(self) -> int:
        """Window width in nm."""
        return int(self.delta_x.sum())

    @property
    def height(self) -> int:
        """Window height in nm."""
        return int(self.delta_y.sum())

    @property
    def complexity(self) -> tuple[int, int]:
        """Pattern complexity ``(cx, cy)``: scan-line counts minus one.

        With ``n`` columns there are ``n + 1`` x scan lines; the paper defines
        complexity as the number of scan lines minus one, i.e. the number of
        intervals, excluding the trailing window boundary interval when the
        pattern was padded.  Here we simply report the interval counts, which
        matches the definition for unpadded patterns.
        """
        return int(self.delta_x.shape[0]), int(self.delta_y.shape[0])

    def with_geometry(
        self, delta_x: np.ndarray, delta_y: np.ndarray
    ) -> "SquishPattern":
        """Return a new pattern with the same topology but new geometry."""
        return SquishPattern(
            topology=self.topology.copy(),
            delta_x=np.asarray(delta_x, dtype=np.int64),
            delta_y=np.asarray(delta_y, dtype=np.int64),
            origin=self.origin,
        )

    def to_layout(self) -> Layout:
        """Decode back to a :class:`repro.geometry.Layout` (lossless)."""
        return Layout.from_grid(self.topology, self.delta_x, self.delta_y, self.origin)

    @classmethod
    def from_layout(cls, layout: Layout) -> "SquishPattern":
        """Encode a layout clip into its squish representation."""
        grid, dx, dy = layout.occupancy_grid()
        return cls(
            topology=grid,
            delta_x=dx,
            delta_y=dy,
            origin=(layout.window.x1, layout.window.y1),
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def as_arrays(self) -> dict[str, np.ndarray]:
        """The pattern as a flat ``name -> array`` dict (the npz codec).

        This is the canonical serialised form: :meth:`save` writes exactly
        these arrays to a single-pattern ``.npz`` file, and the
        :class:`~repro.library.PatternLibrary` shards store the same arrays
        under per-pattern key prefixes.
        """
        return {
            "topology": self.topology,
            "delta_x": self.delta_x,
            "delta_y": self.delta_y,
            "origin": np.asarray(self.origin, dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: "dict[str, np.ndarray]", source: str = "arrays") -> "SquishPattern":
        """Rebuild a pattern from :meth:`as_arrays` output.

        Missing keys and shape-mismatched components raise a ``ValueError``
        naming ``source`` (e.g. the offending file) instead of a bare
        constructor error.
        """
        missing = [key for key in ("topology", "delta_x", "delta_y") if key not in arrays]
        if missing:
            raise ValueError(
                f"{source} is not a squish pattern: missing array(s) {', '.join(missing)}"
            )
        origin = arrays.get("origin")
        if origin is not None:
            origin_array = np.asarray(origin, dtype=np.int64).ravel()
            if origin_array.shape != (2,):
                raise ValueError(f"{source} has a malformed origin (expected 2 values)")
            origin_tuple = (int(origin_array[0]), int(origin_array[1]))
        else:
            origin_tuple = (0, 0)
        try:
            return cls(
                topology=np.asarray(arrays["topology"]),
                delta_x=np.asarray(arrays["delta_x"]),
                delta_y=np.asarray(arrays["delta_y"]),
                origin=origin_tuple,
            )
        except ValueError as error:
            raise ValueError(f"{source} holds an invalid squish pattern: {error}") from error

    def save(self, path) -> None:
        """Write the pattern to a single-pattern ``.npz`` file (lossless)."""
        np.savez_compressed(path, **self.as_arrays())

    @classmethod
    def load(cls, path) -> "SquishPattern":
        """Load a pattern saved by :meth:`save`.

        Files whose topology does not match the delta-vector lengths (or with
        missing components) are rejected with a ``ValueError`` that names the
        file.
        """
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
        return cls.from_arrays(arrays, source=str(path))

    def is_equivalent_to(self, other: "SquishPattern") -> bool:
        """Geometric equivalence: both describe the same physical layout.

        Two squish factorisations of the same layout (e.g. before and after
        fixed-size padding) may use different scan-line sets; comparing their
        canonical forms (all mergeable rows/columns collapsed) removes that
        ambiguity.
        """
        from .padding import canonicalize  # local import to avoid a cycle

        mine = canonicalize(self)
        theirs = canonicalize(other)
        return (
            mine.origin == theirs.origin
            and np.array_equal(mine.topology, theirs.topology)
            and np.array_equal(mine.delta_x, theirs.delta_x)
            and np.array_equal(mine.delta_y, theirs.delta_y)
        )


def squish(layout: Layout) -> SquishPattern:
    """Functional alias for :meth:`SquishPattern.from_layout`."""
    return SquishPattern.from_layout(layout)


def unsquish(pattern: SquishPattern) -> Layout:
    """Functional alias for :meth:`SquishPattern.to_layout`."""
    return pattern.to_layout()


def empty_pattern(size_nm: int, cells: int) -> SquishPattern:
    """An all-space pattern on a uniform ``cells x cells`` grid (test helper)."""
    if cells <= 0 or size_nm <= 0 or size_nm % cells != 0:
        raise ValueError("size_nm must be a positive multiple of cells")
    step = size_nm // cells
    delta = np.full(cells, step, dtype=np.int64)
    return SquishPattern(np.zeros((cells, cells), dtype=np.uint8), delta, delta)


def window_of(pattern: SquishPattern) -> Rect:
    """The window rectangle covered by a squish pattern."""
    ox, oy = pattern.origin
    return Rect(ox, oy, ox + pattern.width, oy + pattern.height)

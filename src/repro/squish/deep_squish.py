"""Deep Squish Pattern representation (Section III-B of the paper).

The squish topology matrix is a sparse one-channel binary image.  Deep squish
folds each ``sqrt(C) x sqrt(C)`` patch of the matrix into a single spatial
location with ``C`` channels, producing a topology *tensor* of shape
``(C, M, M)`` from a matrix of shape ``(sqrt(C)*M, sqrt(C)*M)``.  The fold is
lossless and assigns the same "weight" to every bit — unlike naive bit
concatenation, which creates an exponentially large state space with wildly
unbalanced bit significance (Fig. 5).
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import validate_grid


def _patch_side(channels: int) -> int:
    """Validate the channel count and return ``sqrt(channels)``."""
    if channels <= 0:
        raise ValueError("channels must be positive")
    side = math.isqrt(channels)
    if side * side != channels:
        raise ValueError(
            f"channels must be a perfect square (got {channels})"
        )
    return side


def fold(topology: np.ndarray, channels: int) -> np.ndarray:
    """Fold a binary topology matrix into a ``(C, M, M)`` topology tensor.

    ``topology`` must be square with a side divisible by ``sqrt(channels)``.
    Channel ``c`` of the output at spatial position ``(i, j)`` carries the bit
    at row ``i*s + c // s`` and column ``j*s + c % s`` of the input, where
    ``s = sqrt(channels)``.
    """
    arr = validate_grid(topology)
    side = _patch_side(channels)
    rows, cols = arr.shape
    if rows != cols:
        raise ValueError(f"topology must be square, got {arr.shape}")
    if rows % side != 0:
        raise ValueError(
            f"topology side {rows} is not divisible by patch side {side}"
        )
    m = rows // side
    # (m, s, m, s) -> (s, s, m, m) -> (C, m, m)
    tensor = (
        arr.reshape(m, side, m, side)
        .transpose(1, 3, 0, 2)
        .reshape(channels, m, m)
    )
    return np.ascontiguousarray(tensor)


def unfold(tensor: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fold`: recover the flat binary topology matrix."""
    arr = np.asarray(tensor)
    if arr.ndim != 3:
        raise ValueError(f"topology tensor must be 3-D (C, M, M), got {arr.shape}")
    channels, m, m2 = arr.shape
    if m != m2:
        raise ValueError(f"topology tensor spatial dims must match, got {arr.shape}")
    side = _patch_side(channels)
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("topology tensor entries must be 0 or 1")
    matrix = (
        arr.reshape(side, side, m, m)
        .transpose(2, 0, 3, 1)
        .reshape(side * m, side * m)
    )
    return np.ascontiguousarray(matrix.astype(np.uint8))


def fold_batch(topologies: np.ndarray, channels: int) -> np.ndarray:
    """Fold a batch ``(N, H, W)`` of topology matrices to ``(N, C, M, M)``."""
    arr = np.asarray(topologies)
    if arr.ndim != 3:
        raise ValueError(f"expected (N, H, W) batch, got {arr.shape}")
    return np.stack([fold(t, channels) for t in arr], axis=0)


def unfold_batch(tensors: np.ndarray) -> np.ndarray:
    """Unfold a batch ``(N, C, M, M)`` back to ``(N, H, W)`` matrices."""
    arr = np.asarray(tensors)
    if arr.ndim != 4:
        raise ValueError(f"expected (N, C, M, M) batch, got {arr.shape}")
    return np.stack([unfold(t) for t in arr], axis=0)


def naive_pack(topology: np.ndarray, bits: int) -> np.ndarray:
    """Naive bit concatenation baseline from Fig. 5 (for comparison only).

    Packs each ``sqrt(bits) x sqrt(bits)`` patch into a single integer state
    in ``[0, 2**bits)``.  This representation is also lossless but gives the
    first bit a weight of ``2**(bits-1)`` and the last a weight of 1, and its
    state count grows exponentially with the patch size — exactly the
    numerical-imbalance problem deep squish avoids.
    """
    arr = validate_grid(topology)
    side = _patch_side(bits)
    rows, cols = arr.shape
    if rows != cols or rows % side != 0:
        raise ValueError("topology must be square with side divisible by sqrt(bits)")
    m = rows // side
    patches = arr.reshape(m, side, m, side).transpose(0, 2, 1, 3).reshape(m, m, bits)
    weights = 2 ** np.arange(bits - 1, -1, -1, dtype=np.int64)
    return (patches.astype(np.int64) * weights).sum(axis=-1)


def naive_unpack(packed: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`naive_pack`."""
    arr = np.asarray(packed, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError("packed array must be 2-D")
    if (arr < 0).any() or (arr >= 2**bits).any():
        raise ValueError(f"packed states must lie in [0, 2**{bits})")
    side = _patch_side(bits)
    m, m2 = arr.shape
    if m != m2:
        raise ValueError("packed array must be square")
    shifts = np.arange(bits - 1, -1, -1, dtype=np.int64)
    patches = ((arr[..., None] >> shifts) & 1).reshape(m, m, side, side)
    matrix = patches.transpose(0, 2, 1, 3).reshape(m * side, m * side)
    return matrix.astype(np.uint8)

"""DiffPattern reproduction: layout pattern generation via discrete diffusion.

A complete, self-contained reimplementation of the DAC 2023 paper
*DiffPattern: Layout Pattern Generation via Discrete Diffusion*, including
every substrate it depends on: a rectilinear layout geometry kernel, the
(deep) squish pattern representation, a pure-NumPy neural-network stack, the
discrete diffusion generator, the white-box legalisation solver, a design-rule
checker, synthetic data generation, the baseline generators it is compared
against, and benchmark harnesses that regenerate every table and figure of
the paper's evaluation.

Quick start::

    from repro import DiffPatternConfig, DiffPatternPipeline

    pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
    result = pipeline.run(num_training_patterns=64, num_generated=8)
    print(result.legality, result.pattern_diversity)
"""

from . import (
    baselines,
    data,
    diffusion,
    drc,
    geometry,
    legalization,
    library,
    metrics,
    nn,
    pipeline,
    prefilter,
    scenarios,
    squish,
)
from .data import DatasetConfig, LayoutPatternDataset, SyntheticLayoutGenerator
from .diffusion import DiffusionConfig, DiscreteDiffusion
from .drc import DesignRuleChecker
from .legalization import DesignRules, Legalizer
from .library import PatternLibrary
from .pipeline import DiffPatternConfig, DiffPatternPipeline, GenerationResult
from .scenarios import RunPlan, ScenarioRegistry, ScenarioSpec, builtin_registry
from .squish import SquishPattern

__version__ = "1.0.0"

__all__ = [
    "geometry",
    "squish",
    "nn",
    "diffusion",
    "legalization",
    "drc",
    "prefilter",
    "metrics",
    "data",
    "baselines",
    "pipeline",
    "library",
    "scenarios",
    "ScenarioSpec",
    "ScenarioRegistry",
    "RunPlan",
    "builtin_registry",
    "PatternLibrary",
    "SquishPattern",
    "DesignRules",
    "Legalizer",
    "DesignRuleChecker",
    "DiscreteDiffusion",
    "DiffusionConfig",
    "DatasetConfig",
    "LayoutPatternDataset",
    "SyntheticLayoutGenerator",
    "DiffPatternConfig",
    "DiffPatternPipeline",
    "GenerationResult",
    "__version__",
]

"""Scenario: design rules change — regenerate a legal library without retraining.

Section IV-C highlights DiffPattern's key operational advantage: topology
generation and legalisation are decoupled, so when the foundry updates the
design rules the existing topology pool can simply be re-legalised under the
new rules; no new model, no new training run.

The example takes one topology pool and legalises it under three rule
regimes drawn from the scenario registry (``repro.scenarios``): the normal
rules of ``paper-tables``, the larger minimum spacing of ``sparse``
(Fig. 8b) and the smaller maximum polygon area of ``rule-migration``
(Fig. 8c), then shows how legality under the *new* rules compares to naively
reusing the old geometries.

Usage::

    python examples/design_rule_migration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import DatasetConfig, LayoutPatternDataset
from repro.drc import DesignRuleChecker
from repro.legalization import Legalizer
from repro.scenarios import builtin_registry


def main() -> int:
    # Each rule regime is named by a registry scenario; lowering one yields
    # the DesignRules the rest of the system would run under.
    registry = builtin_registry()
    scenarios = [
        (name, registry.resolve(name).lower().config.rules)
        for name in ("paper-tables", "sparse", "rule-migration")
    ]
    normal_rules = scenarios[0][1]

    dataset = LayoutPatternDataset.synthesize(
        64, DatasetConfig(matrix_size=16, channels=4, rules=normal_rules), rng=0
    )
    topologies = list(dataset.topology_matrices("all"))
    old_patterns = dataset.real_patterns("all")

    header = f"{'rule set':<20}{'reused old geometry':>22}{'re-legalised':>15}{'solver ok':>11}"
    print(header)
    print("-" * len(header))
    for name, rules in scenarios:
        checker = DesignRuleChecker(rules)
        # Naive migration: keep the old geometric vectors and hope they pass.
        reused_legality = checker.legality_rate(old_patterns)
        # DiffPattern migration: re-run the white-box legaliser under the new rules.
        legalizer = Legalizer(rules)
        migrated = legalizer.legal_patterns(topologies, num_solutions=1, rng=0)
        migrated_legality = checker.legality_rate(migrated) if migrated else 0.0
        print(
            f"{name:<20}{reused_legality:>21.1%}{migrated_legality:>15.1%}"
            f"{legalizer.stats.success_rate:>11.1%}"
        )

    print(
        "\nEvery topology that the solver can satisfy under the new rules yields a"
        "\nDRC-clean pattern, without touching the generative model -- the Fig. 8 claim."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Tour of the (deep) squish pattern representation.

Walks through the data representations the framework is built on:

* a rectilinear layout clip and its scan lines,
* the lossless squish encoding (topology matrix + delta vectors),
* fixed-size padding for neural processing,
* the Deep Squish fold into a multi-channel topology tensor,
* the naive bit-packing alternative and why its state space explodes,
* the complexity metric (cx, cy) behind the diversity score.

Usage::

    python examples/squish_representation_tour.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.geometry import Layout, Rect, RectilinearPolygon
from repro.metrics import pattern_complexity
from repro.pipeline import render_topology
from repro.squish import SquishPattern, fold, naive_pack, pad_to_size, unfold


def main() -> int:
    window = Rect(0, 0, 2048, 2048)
    layout = Layout(
        window,
        [
            RectilinearPolygon([Rect(128, 256, 512, 384)]),
            RectilinearPolygon([Rect(896, 256, 1024, 1792)]),
            RectilinearPolygon([Rect(1280, 640, 1920, 768), Rect(1792, 768, 1920, 1280)]),
        ],
    )
    print(f"layout: {layout.num_polygons} polygons, density {layout.density:.2%}")

    pattern = SquishPattern.from_layout(layout)
    print(f"\nsquish topology matrix {pattern.topology.shape}:")
    print(render_topology(pattern.topology))
    print(f"delta_x = {pattern.delta_x.tolist()}")
    print(f"delta_y = {pattern.delta_y.tolist()}")
    assert pattern.to_layout().total_area == layout.total_area  # lossless

    padded = pad_to_size(pattern, 16)
    print(f"\npadded to {padded.topology.shape} (geometry unchanged: "
          f"{padded.is_equivalent_to(pattern)})")

    tensor = fold(padded.topology, 16)
    print(f"deep squish tensor shape: {tensor.shape}  (16 channels, 4x4 spatial)")
    assert np.array_equal(unfold(tensor), padded.topology)

    packed = naive_pack(padded.topology, 16)
    print(f"naive bit packing state range: 0 .. {packed.max()} "
          f"(vs. binary states per channel in deep squish)")

    cx, cy = pattern_complexity(pattern)
    print(f"\npattern complexity (cx, cy) = ({cx}, {cy}) -- the quantity whose "
          "distribution entropy defines library diversity (Eq. 4)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Scenario: expand a pattern library for hotspot-detection training data.

The paper's motivation (Section I) is that DFM applications such as layout
hotspot detection need large, diverse, *legal* pattern libraries, and that
producing them from real designs is slow.  This example mimics that workflow:

* a small "existing" library plays the role of the patterns harvested from a
  real design,
* DiffPattern-L generates many legal patterns per topology, multiplying the
  library size without re-running the generator,
* the expanded library is compared with the seed library on size, diversity
  and legality — the three quantities Table I reports,
* the expansion is persisted into a sharded v2 :class:`~repro.library.
  PatternLibrary` and the hotspot training slice is selected with the
  indexed :meth:`~repro.library.PatternLibrary.query` API — a complexity
  band around the library median, served from sidecar metadata without
  loading shards, then materialised lazily per handle.

The regime (rules, solutions per topology) comes from the registry's
``hotspot-expansion`` scenario; ``--solutions-per-topology`` overrides it.

Usage::

    python examples/hotspot_library_expansion.py [--solutions-per-topology 8]
        [--library DIR] [--band LO:HI]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import DatasetConfig, LayoutPatternDataset
from repro.drc import DesignRuleChecker
from repro.legalization import Legalizer
from repro.library import ChunkRecord, PatternLibrary
from repro.metrics import ComplexityHistogram, pattern_complexity, pattern_diversity
from repro.prefilter import TopologyPrefilter
from repro.scenarios import builtin_registry


def persist_expansion(root: Path, rules, patterns, chunk_size: int = 64) -> PatternLibrary:
    """Write the expanded patterns into a sharded v2 library.

    One ``hotspot`` writer appends in chunks, exactly like a generation run
    would; the on-disk index then answers the training-slice queries below
    without rescanning shards.
    """
    library = PatternLibrary(root, dedup=True, writer="hotspot")
    library.bind({"regime": repr(rules), "source": "hotspot-expansion"})
    for chunk, start in enumerate(range(0, len(patterns), chunk_size)):
        batch = patterns[start : start + chunk_size]
        histogram = ComplexityHistogram([pattern_complexity(p) for p in batch])
        record = ChunkRecord(
            chunk=chunk,
            start=start,
            num_sampled=len(batch),
            num_kept=len(batch),
            num_rejected=0,
            unsolved=0,
            num_patterns=len(batch),
            num_stored=0,
            duplicates_skipped=0,
            num_clean=len(batch),
            shard=None,
            pattern_complexity_counts=histogram.as_records(),
        )
        library.append_chunk(record, batch)
    return library


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed-library", type=int, default=96, help="size of the existing library")
    parser.add_argument(
        "--solutions-per-topology", type=int, default=None,
        help="geometric solutions per topology (default: the scenario's)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--library", type=Path, default=None,
        help="persist the expansion into this v2 pattern library "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--band", default=None, metavar="LO:HI",
        help="complexity band (cx+cy) for the hotspot training slice "
        "(default: median +/- 2)",
    )
    args = parser.parse_args()

    plan = builtin_registry().resolve("hotspot-expansion").lower()
    rules = plan.config.rules
    if args.solutions_per_topology is None:
        args.solutions_per_topology = plan.num_solutions
    dataset = LayoutPatternDataset.synthesize(
        args.seed_library, DatasetConfig(matrix_size=16, channels=4, rules=rules), rng=args.seed
    )
    seed_patterns = dataset.real_patterns("all")
    checker = DesignRuleChecker(rules)
    print(f"seed library: {len(seed_patterns)} patterns, "
          f"diversity H = {pattern_diversity(seed_patterns):.4f}, "
          f"legality = {checker.legality_rate(seed_patterns):.1%}")

    # In a production run the topologies would come from the trained diffusion
    # model (see quickstart.py).  The expansion step itself only needs a pool
    # of pre-filtered topologies, so here we reuse the seed topologies to keep
    # the example fast and deterministic.
    prefilter = TopologyPrefilter()
    topologies = prefilter.filter(list(dataset.topology_matrices("all"))).kept

    legalizer = Legalizer(rules, reference_geometries=dataset.reference_geometries("all"))
    expanded = legalizer.legal_patterns(
        topologies, num_solutions=args.solutions_per_topology, rng=args.seed
    )

    print(f"expanded library: {len(expanded)} patterns "
          f"({args.solutions_per_topology} geometries per topology)")
    print(f"  diversity H = {pattern_diversity(expanded):.4f}")
    print(f"  legality    = {checker.legality_rate(expanded):.1%}")
    print(f"  solver success rate = {legalizer.stats.success_rate:.1%}, "
          f"avg {legalizer.stats.average_time_per_solution * 1e3:.1f} ms per solution")

    root = args.library or Path(tempfile.mkdtemp(prefix="hotspot-library-"))
    library = persist_expansion(root, rules, expanded)
    print(f"persisted at {root}: {library.summary()}")

    # The hotspot training slice: an indexed complexity-band query.  The
    # selection runs over sidecar metadata alone; shards are only read when
    # a handle is materialised.
    everything = library.query(rule_regime=repr(rules))
    if args.band is not None:
        lo_text, _, hi_text = args.band.partition(":")
        lo = int(lo_text) if lo_text else None
        hi = int(hi_text) if hi_text else None
    else:
        median = int(statistics.median(h.cx + h.cy for h in everything))
        lo, hi = median - 2, median + 2
    slice_handles = library.query(complexity_band=(lo, hi))
    print(f"training slice (complexity band {lo}..{hi}): "
          f"{len(slice_handles)}/{len(everything)} patterns")
    if slice_handles:
        sample = slice_handles[0].load()
        print(f"  first handle materialised: topology {sample.topology.shape}, "
              f"DRC clean = {checker.check_pattern(sample).clean}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

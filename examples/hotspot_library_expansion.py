"""Scenario: expand a pattern library for hotspot-detection training data.

The paper's motivation (Section I) is that DFM applications such as layout
hotspot detection need large, diverse, *legal* pattern libraries, and that
producing them from real designs is slow.  This example mimics that workflow:

* a small "existing" library plays the role of the patterns harvested from a
  real design,
* DiffPattern-L generates many legal patterns per topology, multiplying the
  library size without re-running the generator,
* the expanded library is compared with the seed library on size, diversity
  and legality — the three quantities Table I reports.

The regime (rules, solutions per topology) comes from the registry's
``hotspot-expansion`` scenario; ``--solutions-per-topology`` overrides it.

Usage::

    python examples/hotspot_library_expansion.py [--solutions-per-topology 8]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import DatasetConfig, LayoutPatternDataset
from repro.drc import DesignRuleChecker
from repro.legalization import Legalizer
from repro.metrics import pattern_diversity
from repro.prefilter import TopologyPrefilter
from repro.scenarios import builtin_registry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed-library", type=int, default=96, help="size of the existing library")
    parser.add_argument(
        "--solutions-per-topology", type=int, default=None,
        help="geometric solutions per topology (default: the scenario's)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    plan = builtin_registry().resolve("hotspot-expansion").lower()
    rules = plan.config.rules
    if args.solutions_per_topology is None:
        args.solutions_per_topology = plan.num_solutions
    dataset = LayoutPatternDataset.synthesize(
        args.seed_library, DatasetConfig(matrix_size=16, channels=4, rules=rules), rng=args.seed
    )
    seed_patterns = dataset.real_patterns("all")
    checker = DesignRuleChecker(rules)
    print(f"seed library: {len(seed_patterns)} patterns, "
          f"diversity H = {pattern_diversity(seed_patterns):.4f}, "
          f"legality = {checker.legality_rate(seed_patterns):.1%}")

    # In a production run the topologies would come from the trained diffusion
    # model (see quickstart.py).  The expansion step itself only needs a pool
    # of pre-filtered topologies, so here we reuse the seed topologies to keep
    # the example fast and deterministic.
    prefilter = TopologyPrefilter()
    topologies = prefilter.filter(list(dataset.topology_matrices("all"))).kept

    legalizer = Legalizer(rules, reference_geometries=dataset.reference_geometries("all"))
    expanded = legalizer.legal_patterns(
        topologies, num_solutions=args.solutions_per_topology, rng=args.seed
    )

    print(f"expanded library: {len(expanded)} patterns "
          f"({args.solutions_per_topology} geometries per topology)")
    print(f"  diversity H = {pattern_diversity(expanded):.4f}")
    print(f"  legality    = {checker.legality_rate(expanded):.1%}")
    print(f"  solver success rate = {legalizer.stats.success_rate:.1%}, "
          f"avg {legalizer.stats.average_time_per_solution * 1e3:.1f} ms per solution")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Quickstart: train DiffPattern at laptop scale and generate legal patterns.

Runs the full framework end to end in a couple of minutes on CPU:

1. synthesise a DRC-clean training library (the ICCAD-map substitute),
2. train the discrete diffusion model on deep-squish topology tensors,
3. sample fresh topologies, pre-filter them,
4. assign legal geometric vectors with the white-box solver,
5. report legality / diversity and draw one generated pattern as ASCII art.

Usage::

    python examples/quickstart.py [--iterations 600] [--generate 16]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.diffusion import DiffusionConfig
from repro.pipeline import DiffPatternConfig, DiffPatternPipeline, render_pattern


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=600, help="training iterations")
    parser.add_argument("--generate", type=int, default=16, help="topologies to sample")
    parser.add_argument("--training-patterns", type=int, default=192)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="legalization process-pool width (1 = serial; results are "
        "identical for any value)",
    )
    args = parser.parse_args()

    config = DiffPatternConfig.tiny()
    config.diffusion = DiffusionConfig(num_steps=32, lambda_ce=0.05)
    config.workers = args.workers
    pipeline = DiffPatternPipeline(config)

    print("[1/4] synthesising the training library ...")
    dataset = pipeline.prepare_data(args.training_patterns, rng=args.seed)
    print(f"      {len(dataset)} patterns, tensor shape "
          f"{dataset.topology_tensors('train').shape[1:]}")

    print(f"[2/4] training the discrete diffusion model ({args.iterations} iterations) ...")
    start = time.perf_counter()
    history = pipeline.train(iterations=args.iterations, rng=args.seed)
    print(f"      done in {time.perf_counter() - start:.1f}s, "
          f"final loss {history[-1]['loss']:.4f}")

    print(f"[3/4] sampling {args.generate} topologies ...")
    topologies = pipeline.generate_topologies(args.generate, rng=args.seed)

    print(f"[4/4] legal pattern assessment (DiffPattern-S, workers={args.workers}) ...")
    result = pipeline.legalize(topologies, num_solutions=1, rng=args.seed)
    print(f"      pre-filter reject rate : {result.prefilter_reject_rate:.1%}")
    print(f"      unsolved topologies    : {result.unsolved}")
    print(f"      legal patterns         : {result.num_patterns}")
    print(f"      legality (DRC)         : {result.legality:.1%}")
    print(f"      pattern diversity H    : {result.pattern_diversity:.4f}")

    report = result.legalization_report
    if report is not None and report.num_topologies:
        print("\nlegalization engine report:")
        print(report.format())

    if result.patterns:
        print("\none generated legal pattern (ASCII rendering):")
        print(render_pattern(result.patterns[0], width=48))
    else:
        print("\nno topology survived at this training budget -- increase --iterations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

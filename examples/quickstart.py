"""Quickstart: train DiffPattern at laptop scale and generate legal patterns.

Runs the full framework end to end in a couple of minutes on CPU:

1. synthesise a DRC-clean training library (the ICCAD-map substitute),
2. train the discrete diffusion model on deep-squish topology tensors,
3. stream generation through the stage graph — each fixed-size chunk flows
   sample -> prefilter -> legalize -> DRC before the next chunk is sampled,
   so peak memory is bounded by the chunk size (the monolithic batch path is
   one flag away and produces the identical result),
4. report legality / diversity and draw one generated pattern as ASCII art.

Streaming + persistence walkthrough::

    python examples/quickstart.py --stream --chunk-size 8          # bounded memory
    python examples/quickstart.py --library out/lib                # persist chunks
    # kill it halfway (Ctrl-C), then pick up where it stopped:
    python examples/quickstart.py --library out/lib --resume

A resumed run reloads completed chunks from ``out/lib/manifest.json`` and its
npz shards instead of re-generating them, and reproduces the uninterrupted
run exactly (same patterns, same diversity H, same legality).

Usage::

    python examples/quickstart.py [--iterations 600] [--generate 16]
        [--batch | --stream] [--chunk-size 8] [--library DIR] [--resume]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.diffusion import DiffusionConfig
from repro.library import PatternLibrary
from repro.pipeline import DiffPatternConfig, DiffPatternPipeline, render_pattern


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=600, help="training iterations")
    parser.add_argument("--generate", type=int, default=16, help="topologies to sample")
    parser.add_argument("--training-patterns", type=int, default=192)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="legalization process-pool width (1 = serial; results are "
        "identical for any value)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--stream",
        action="store_true",
        default=True,
        help="stream generation chunk by chunk (default; bounded memory)",
    )
    mode.add_argument(
        "--batch",
        dest="stream",
        action="store_false",
        help="single-barrier path: sample everything, then assess everything "
        "(identical output, unbounded memory)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=8,
        help="samples per streamed graph step (memory knob only — the "
        "generated patterns are identical for any value)",
    )
    parser.add_argument(
        "--library",
        type=Path,
        default=None,
        help="directory to persist the pattern library (npz shards + manifest)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed --library run from its manifest",
    )
    args = parser.parse_args()
    if args.resume and args.library is None:
        parser.error("--resume needs --library: the manifest is what a run resumes from")

    config = DiffPatternConfig.tiny()
    config.diffusion = DiffusionConfig(num_steps=32, lambda_ce=0.05)
    config.workers = args.workers
    pipeline = DiffPatternPipeline(config)

    print("[1/4] synthesising the training library ...")
    dataset = pipeline.prepare_data(args.training_patterns, rng=args.seed)
    print(f"      {len(dataset)} patterns, tensor shape "
          f"{dataset.topology_tensors('train').shape[1:]}")

    print(f"[2/4] training the discrete diffusion model ({args.iterations} iterations) ...")
    start = time.perf_counter()
    history = pipeline.train(iterations=args.iterations, rng=args.seed)
    print(f"      done in {time.perf_counter() - start:.1f}s, "
          f"final loss {history[-1]['loss']:.4f}")

    library = PatternLibrary(args.library) if args.library is not None else None
    mode_label = (
        f"streaming, chunks of {args.chunk_size}" if args.stream else "batch barrier"
    )
    print(f"[3/4] generation graph: sample -> prefilter -> legalize -> DRC "
          f"({mode_label}, workers={args.workers}) ...")
    result = pipeline.generate_and_legalize(
        args.generate,
        num_solutions=1,
        rng=args.seed,
        stream=args.stream,
        chunk_size=args.chunk_size,
        library=library,
        resume=args.resume,
    )

    print("[4/4] legal pattern assessment (DiffPattern-S) ...")
    print(f"      pre-filter reject rate : {result.prefilter_reject_rate:.1%}")
    print(f"      unsolved topologies    : {result.unsolved}")
    print(f"      legal patterns         : {result.num_patterns}")
    print(f"      legality (DRC)         : {result.legality:.1%}")
    print(f"      pattern diversity H    : {result.pattern_diversity:.4f}")

    if result.sampling_report is not None:
        print("\nsampling engine report:")
        print(result.sampling_report.format())
    report = result.legalization_report
    if report is not None and report.num_topologies:
        print("\nlegalization engine report:")
        print(report.format())
    if library is not None:
        print(f"\npattern library at {args.library}: {library.summary()}")
        print("      (kill this run and pass --resume to continue it)")

    if result.patterns:
        print("\none generated legal pattern (ASCII rendering):")
        print(render_pattern(result.patterns[0], width=48))
    else:
        print("\nno topology survived at this training budget -- increase --iterations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

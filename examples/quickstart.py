"""Quickstart: run a registry scenario end to end and generate legal patterns.

Runs the full framework — synthesise a DRC-clean training library, train the
discrete diffusion model, stream generation through the stage graph
(sample -> prefilter -> legalize -> DRC chunk by chunk), report legality /
diversity and draw one generated pattern as ASCII art.

The workload comes from the scenario registry (``repro.scenarios``): pass
``--scenario NAME`` to run any registered regime.  ``python -m repro
list-scenarios`` shows what ships; the default here is a quickstart-scale
regime close to the ``smoke`` scenario but trained long enough to produce a
healthy pattern yield.  Flags layer over the scenario exactly like the CLI's.

Streaming + persistence walkthrough (mirrors ``python -m repro generate``)::

    python examples/quickstart.py --stream --chunk-size 8          # bounded memory
    python examples/quickstart.py --library out/lib                # persist chunks
    # kill it halfway (Ctrl-C), then pick up where it stopped:
    python examples/quickstart.py --library out/lib --resume

A resumed run reloads completed chunks from ``out/lib/manifest.json`` and its
npz shards instead of re-generating them, and reproduces the uninterrupted
run exactly (same patterns, same diversity H, same legality).  The same
library is then readable with ``python -m repro inspect-library out/lib``.

Usage::

    python examples/quickstart.py [--scenario smoke] [--iterations 600]
        [--generate 16] [--batch | --stream] [--chunk-size 8]
        [--library DIR] [--resume]

Flags left unset fall back to the scenario's own values.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import knob_overrides
from repro.library import PatternLibrary
from repro.pipeline import DiffPatternPipeline, render_pattern
from repro.scenarios import builtin_registry
from repro.utils import as_rng


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default="smoke",
        help="registry scenario to run (see `python -m repro list-scenarios`)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="training iterations (default: the scenario's)",
    )
    parser.add_argument(
        "--generate", type=int, default=None,
        help="topologies to sample (default: the scenario's)",
    )
    parser.add_argument("--training-patterns", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="legalization process-pool width (1 = serial, 0 = auto; results "
        "are identical for any value)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--stream",
        action="store_true",
        default=None,
        help="stream generation chunk by chunk (the scenarios' default; "
        "bounded memory)",
    )
    mode.add_argument(
        "--batch",
        dest="stream",
        action="store_false",
        help="single-barrier path: sample everything, then assess everything "
        "(identical output, unbounded memory)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="samples per streamed graph step (memory knob only — the "
        "generated patterns are identical for any value)",
    )
    parser.add_argument(
        "--library",
        type=Path,
        default=None,
        help="directory to persist the pattern library (npz shards + manifest)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed --library run from its manifest",
    )
    args = parser.parse_args()
    if args.resume and args.library is None:
        parser.error("--resume needs --library: the manifest is what a run resumes from")

    # The scenario names the regime; explicitly-passed quickstart flags layer
    # over it through the exact helper the `python -m repro` knob flags use.
    overrides = knob_overrides(
        generate=args.generate,
        seed=args.seed,
        train_iterations=args.iterations,
        training_patterns=args.training_patterns,
        workers=args.workers,
        chunk_size=args.chunk_size,
        stream=args.stream,
    )
    spec = builtin_registry().resolve(args.scenario)
    if overrides:
        spec = spec.with_overrides(overrides)
    plan = spec.lower()
    pipeline = DiffPatternPipeline(plan.config)
    rng = as_rng(plan.seed)

    print(f"scenario '{plan.scenario}': {plan.description}")
    print("[1/4] synthesising the training library ...")
    dataset = pipeline.prepare_data(plan.num_training_patterns, rng=rng)
    print(f"      {len(dataset)} patterns, tensor shape "
          f"{dataset.topology_tensors('train').shape[1:]}")

    print(f"[2/4] training the discrete diffusion model "
          f"({plan.config.train_iterations} iterations) ...")
    start = time.perf_counter()
    history = pipeline.train(rng=rng)
    print(f"      done in {time.perf_counter() - start:.1f}s, "
          f"final loss {history[-1]['loss']:.4f}")

    library = (
        PatternLibrary(args.library, dedup=plan.dedup)
        if args.library is not None
        else None
    )
    chunk = (
        plan.config.stream_chunk_size
        if plan.config.stream_chunk_size is not None
        else plan.config.sample_batch_size
    )
    mode_label = f"streaming, chunks of {chunk}" if plan.stream else "batch barrier"
    print(f"[3/4] generation graph: sample -> prefilter -> legalize -> DRC "
          f"({mode_label}, workers={plan.config.workers}) ...")
    result = pipeline.generate_and_legalize(
        plan.num_generated,
        num_solutions=plan.num_solutions,
        rng=rng,
        stream=plan.stream,
        retain_topologies=plan.retain_topologies,
        library=library,
        resume=args.resume,
    )

    print("[4/4] legal pattern assessment (DiffPattern-S) ...")
    print(f"      pre-filter reject rate : {result.prefilter_reject_rate:.1%}")
    print(f"      unsolved topologies    : {result.unsolved}")
    print(f"      legal patterns         : {result.num_patterns}")
    print(f"      legality (DRC)         : {result.legality:.1%}")
    print(f"      pattern diversity H    : {result.pattern_diversity:.4f}")

    if result.sampling_report is not None:
        print("\nsampling engine report:")
        print(result.sampling_report.format())
    report = result.legalization_report
    if report is not None and report.num_topologies:
        print("\nlegalization engine report:")
        print(report.format())
    if library is not None:
        print(f"\npattern library at {args.library}: {library.summary()}")
        print("      (kill this run and pass --resume to continue it; "
              f"`python -m repro inspect-library {args.library}` reads it back)")

    if result.patterns:
        print("\none generated legal pattern (ASCII rendering):")
        print(render_pattern(result.patterns[0], width=48))
    else:
        print("\nno topology survived at this training budget -- increase --iterations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
